//! The write-ahead-log backend: append-only log + periodic snapshot,
//! replayed on open.
//!
//! ## On-disk layout
//!
//! A backend owns one directory holding up to two files:
//!
//! * `snapshot.bin` — magic `BRSNP1\0\0`, then the canonical record
//!   sequence of [`DurableState::to_records`], each framed as below.
//!   Written atomically (temp file + rename), so it is either absent or
//!   complete.
//! * `wal.log` — magic `BRWAL1\0\0`, then one frame per mutation applied
//!   since the last snapshot.
//!
//! Every frame is `[u32 len][u32 fnv1a32(payload)][payload]`, all
//! little-endian, where the payload is [`WalRecord::encode`]. The
//! checksum makes a torn or corrupted tail detectable: replay stops at
//! the first bad frame, notes what it dropped in the [`ReplayReport`],
//! truncates the log back to the last good frame, and continues — a
//! crash mid-append never poisons the store and never panics.
//!
//! ## Replay invariants
//!
//! * `open` ≡ fold(snapshot records) then fold(log records): the state
//!   after open equals the state before the crash, minus at most the
//!   single torn tail frame.
//! * Snapshots iterate `BTreeMap`s, so two snapshots of equal states
//!   are byte-identical — golden-testable and diffable.
//! * After a snapshot the log is truncated to its magic; the pair
//!   `(snapshot, empty log)` encodes the same state the pair
//!   `(old snapshot, full log)` did.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use crate::record::WalRecord;
use crate::state::DurableState;
use crate::StateStore;

/// Magic header of `wal.log`.
pub const LOG_MAGIC: &[u8; 8] = b"BRWAL1\0\0";
/// Magic header of `snapshot.bin`.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"BRSNP1\0\0";

/// Largest frame payload `open` will accept. Real records are tens of
/// bytes; the cap keeps a corrupted length field from provoking a huge
/// allocation.
const MAX_PAYLOAD: u32 = 1 << 16;

/// Directories currently locked by backends in *this* process. The
/// on-disk `wal.lock` file carries only a PID, so same-process
/// double-opens need their own ledger (both would present the same,
/// very-much-alive PID).
fn open_dirs() -> &'static Mutex<HashSet<PathBuf>> {
    static OPEN_DIRS: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    OPEN_DIRS.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Whether `pid` names a live process. Uses `/proc` where it exists;
/// elsewhere every foreign lock looks stale, which errs toward
/// recoverability (the in-process ledger still catches same-process
/// double-opens, the common corruption source).
fn pid_alive(pid: u32) -> bool {
    Path::new("/proc").join(pid.to_string()).exists()
}

/// Instance token for `pid`: the kernel's process start time (field 22
/// of `/proc/<pid>/stat`, clock ticks since boot). Two processes that
/// reuse one PID cannot share it, which is exactly the disambiguation
/// the lock file needs — a bare PID match proves nothing after the
/// original owner died and the kernel recycled its number. `None`
/// where `/proc` is unavailable or unparsable.
fn pid_birth(pid: u32) -> Option<u64> {
    let stat =
        std::fs::read_to_string(Path::new("/proc").join(pid.to_string()).join("stat")).ok()?;
    // The comm field may contain spaces and parentheses; everything
    // after the *last* `)` is whitespace-separated, starting at field 3
    // (state), so starttime (field 22) is the 20th token from there.
    let after_comm = stat.rsplit_once(')')?.1;
    after_comm.split_whitespace().nth(19)?.parse().ok()
}

/// What a lock file names: the owning PID, plus the owner's boot-scoped
/// instance token when one was recorded (older lock files carry only
/// the PID).
struct LockHolder {
    pid: u32,
    birth: Option<u64>,
}

/// Parses `wal.lock` contents (`"<pid>"` or `"<pid> <birth>"`).
fn parse_lock(contents: &str) -> Option<LockHolder> {
    let mut parts = contents.split_whitespace();
    let pid = parts.next()?.parse().ok()?;
    let birth = parts.next().and_then(|t| t.parse().ok());
    Some(LockHolder { pid, birth })
}

/// Whether the lock file's holder is the *same process instance* that
/// wrote it — not merely a live process wearing a recycled PID. A
/// recorded token that mismatches the live process's token proves PID
/// reuse, so the lock is stale; with no token on either side (old lock
/// format, or no `/proc`) the bare liveness check is all there is.
fn holder_still_owns(holder: &LockHolder) -> bool {
    if !pid_alive(holder.pid) {
        return false;
    }
    match (holder.birth, pid_birth(holder.pid)) {
        (Some(recorded), Some(live)) => recorded == live,
        _ => true,
    }
}

/// Takes the exclusive open lock on `dir`, or explains who holds it.
///
/// Two cooperating layers: `wal.lock` (created exclusively, holding the
/// owner's PID and its boot-scoped start-time token) fences other
/// processes, and the in-process ledger fences a second open in this
/// one. A lock file whose owner is no longer running — including a
/// *recycled* PID whose recorded token mismatches the live process —
/// is a crash leftover and is broken silently; crash recovery must not
/// require manual cleanup.
fn acquire_dir_lock(dir: &Path) -> std::io::Result<PathBuf> {
    let canonical = dir.canonicalize().unwrap_or_else(|_| dir.to_path_buf());
    let lock_path = dir.join("wal.lock");
    {
        let held = open_dirs().lock().expect("lock ledger poisoned");
        if held.contains(&canonical) {
            return Err(std::io::Error::new(
                ErrorKind::AddrInUse,
                format!("{} is already open in this process", dir.display()),
            ));
        }
    }
    for attempt in 0..2 {
        match OpenOptions::new().write(true).create_new(true).open(&lock_path) {
            Ok(mut f) => {
                let pid = std::process::id();
                let contents = match pid_birth(pid) {
                    Some(birth) => format!("{pid} {birth}"),
                    None => pid.to_string(),
                };
                f.write_all(contents.as_bytes())?;
                open_dirs().lock().expect("lock ledger poisoned").insert(canonical);
                return Ok(lock_path);
            }
            Err(e) if e.kind() == ErrorKind::AlreadyExists && attempt == 0 => {
                let holder = std::fs::read_to_string(&lock_path).ok().and_then(|s| parse_lock(&s));
                match holder {
                    // A live foreign process instance holds it: refuse.
                    Some(h) if h.pid != std::process::id() && holder_still_owns(&h) => {
                        return Err(std::io::Error::new(
                            ErrorKind::AddrInUse,
                            format!("{} is locked by live pid {}", dir.display(), h.pid),
                        ));
                    }
                    // Dead owner, a reused PID, our own stale leftover,
                    // or garbage contents: break the lock, retry once.
                    _ => {
                        std::fs::remove_file(&lock_path)?;
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("second create_new attempt either succeeds or errors")
}

/// Releases the lock taken by [`acquire_dir_lock`].
fn release_dir_lock(dir: &Path, lock_path: &Path) {
    let canonical = dir.canonicalize().unwrap_or_else(|_| dir.to_path_buf());
    open_dirs().lock().expect("lock ledger poisoned").remove(&canonical);
    let _ = std::fs::remove_file(lock_path);
}

/// FNV-1a, 32-bit: tiny, dependency-free, and plenty to catch torn
/// writes and bit rot (this is corruption *detection*, not security).
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// What `open` found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records folded from `snapshot.bin`.
    pub snapshot_records: usize,
    /// Records folded from `wal.log`.
    pub log_records: usize,
    /// Human-readable note about a dropped torn/corrupt tail, if any.
    pub dropped: Option<String>,
}

/// The durable [`StateStore`]: every applied record is framed and
/// appended to `wal.log` before the in-memory fold advances; every
/// `snapshot_every` appended records the state is snapshotted and the
/// log truncated.
#[derive(Debug)]
pub struct WalBackend {
    dir: PathBuf,
    state: DurableState,
    log: File,
    /// Frames appended since the last snapshot (including replayed ones).
    log_frames: u64,
    /// Auto-snapshot threshold; 0 disables automatic snapshots.
    snapshot_every: u64,
    replay: ReplayReport,
    /// First I/O error encountered after open, if any. The [`StateStore`]
    /// trait is infallible (the in-memory fold must advance regardless),
    /// so disk trouble is latched here instead of panicking.
    io_error: Option<String>,
    /// Path of the `wal.lock` file held for this directory; released
    /// (ledger entry and file) on drop.
    lock_path: PathBuf,
}

impl Drop for WalBackend {
    fn drop(&mut self) {
        release_dir_lock(&self.dir, &self.lock_path);
    }
}

/// Encodes one frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads frames from `bytes` (already past the magic), folding each
/// decoded record with `sink`. Returns `(count, valid_len, dropped)`:
/// how many records were folded, how many bytes from the start of
/// `bytes` formed valid frames, and a note when a torn or corrupt tail
/// was dropped.
fn read_frames(bytes: &[u8], mut sink: impl FnMut(WalRecord)) -> (usize, usize, Option<String>) {
    let mut pos = 0usize;
    let mut count = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            return (
                count,
                pos,
                Some(format!("torn frame header ({} bytes) at offset {pos}", rest.len())),
            );
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        let want = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return (count, pos, Some(format!("implausible frame length {len} at offset {pos}")));
        }
        let len = len as usize;
        if rest.len() < 8 + len {
            return (
                count,
                pos,
                Some(format!(
                    "torn frame payload ({} of {len} bytes) at offset {pos}",
                    rest.len() - 8
                )),
            );
        }
        let payload = &rest[8..8 + len];
        let got = fnv1a32(payload);
        if got != want {
            return (
                count,
                pos,
                Some(format!(
                    "checksum mismatch at offset {pos}: stored {want:#010x}, computed {got:#010x}"
                )),
            );
        }
        match WalRecord::decode(payload) {
            Ok(rec) => sink(rec),
            Err(e) => {
                return (count, pos, Some(format!("undecodable record at offset {pos}: {e}")))
            }
        }
        pos += 8 + len;
        count += 1;
    }
    (count, pos, None)
}

impl WalBackend {
    /// Opens (creating if needed) the store in `dir`, replaying
    /// `snapshot.bin` and `wal.log` into memory. A torn or corrupt log
    /// tail is dropped and the file truncated back to its last good
    /// frame; the [`ReplayReport`] says so. A corrupt *snapshot* is a
    /// hard error — snapshots are written atomically, so damage there
    /// is not a crash artifact.
    pub fn open(dir: impl Into<PathBuf>, snapshot_every: u64) -> std::io::Result<WalBackend> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        // Exclusive-open fence: a second live opener — same process or
        // another — gets `AddrInUse` instead of a shared append handle
        // silently interleaving frames.
        let lock_path = acquire_dir_lock(&dir)?;
        match Self::open_locked(&dir, snapshot_every, lock_path.clone()) {
            Ok(backend) => Ok(backend),
            Err(e) => {
                release_dir_lock(&dir, &lock_path);
                Err(e)
            }
        }
    }

    /// The body of [`Self::open`], run while holding the dir lock.
    fn open_locked(
        dir: &Path,
        snapshot_every: u64,
        lock_path: PathBuf,
    ) -> std::io::Result<WalBackend> {
        let dir = dir.to_path_buf();
        let mut state = DurableState::new();
        let mut replay = ReplayReport::default();

        let snap_path = dir.join("snapshot.bin");
        if snap_path.exists() {
            let bytes = std::fs::read(&snap_path)?;
            let body = check_magic(&bytes, SNAPSHOT_MAGIC, "snapshot.bin")?;
            let (count, _, dropped) = read_frames(body, |rec| {
                state.apply(&rec);
            });
            if let Some(note) = dropped {
                return Err(bad_data(format!("corrupt snapshot.bin: {note}")));
            }
            replay.snapshot_records = count;
        }

        let log_path = dir.join("wal.log");
        let mut log_frames = 0u64;
        if log_path.exists() {
            let bytes = std::fs::read(&log_path)?;
            let body = check_magic(&bytes, LOG_MAGIC, "wal.log")?;
            let (count, valid, dropped) = read_frames(body, |rec| {
                state.apply(&rec);
            });
            replay.log_records = count;
            log_frames = count as u64;
            if let Some(note) = dropped {
                // Drop the tail on disk too, so the next append starts
                // at a clean frame boundary.
                let keep = (LOG_MAGIC.len() + valid) as u64;
                let f = OpenOptions::new().write(true).open(&log_path)?;
                f.set_len(keep)?;
                replay.dropped = Some(note);
            }
        } else {
            let mut f = File::create(&log_path)?;
            f.write_all(LOG_MAGIC)?;
        }

        let mut log = OpenOptions::new().append(true).open(&log_path)?;
        log.seek(SeekFrom::End(0))?;
        Ok(WalBackend {
            dir,
            state,
            log,
            log_frames,
            snapshot_every,
            replay,
            io_error: None,
            lock_path,
        })
    }

    /// The directory this backend persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What the last `open` replayed.
    pub fn replay_report(&self) -> &ReplayReport {
        &self.replay
    }

    /// The first I/O error latched since open, if any.
    pub fn io_error(&self) -> Option<&str> {
        self.io_error.as_deref()
    }

    /// Frames currently in the log (since the last snapshot).
    pub fn log_frames(&self) -> u64 {
        self.log_frames
    }

    /// The snapshot threshold this backend was opened with (0 = never).
    pub fn snapshot_every(&self) -> u64 {
        self.snapshot_every
    }

    /// Writes the current state to `snapshot.bin` (atomically, via a
    /// temp file and rename) and truncates the log.
    pub fn snapshot(&mut self) -> std::io::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(SNAPSHOT_MAGIC)?;
            for rec in self.state.to_records() {
                f.write_all(&frame(&rec.encode()))?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join("snapshot.bin"))?;
        // The log's contents are now folded into the snapshot.
        self.log.set_len(LOG_MAGIC.len() as u64)?;
        self.log.seek(SeekFrom::End(0))?;
        self.log_frames = 0;
        Ok(())
    }

    /// Encodes the current state as snapshot bytes without touching
    /// disk (golden tests compare these directly).
    pub fn snapshot_bytes(state: &DurableState) -> Vec<u8> {
        let mut out = SNAPSHOT_MAGIC.to_vec();
        for rec in state.to_records() {
            out.extend_from_slice(&frame(&rec.encode()));
        }
        out
    }

    fn latch(&mut self, res: std::io::Result<()>) {
        if let (Err(e), None) = (res, &self.io_error) {
            self.io_error = Some(e.to_string());
        }
    }
}

fn check_magic<'a>(bytes: &'a [u8], magic: &[u8; 8], name: &str) -> std::io::Result<&'a [u8]> {
    if bytes.len() < magic.len() || &bytes[..magic.len()] != magic {
        return Err(bad_data(format!("{name}: missing or wrong magic header")));
    }
    Ok(&bytes[magic.len()..])
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

impl StateStore for WalBackend {
    fn kind(&self) -> &'static str {
        "wal"
    }

    fn apply(&mut self, rec: &WalRecord) {
        // Log first, fold second: a record is durable before it is
        // visible. No-ops are not logged, so replay and registration
        // re-syncs cannot grow the log.
        let mut probe = self.state.clone();
        if !probe.apply(rec) {
            return;
        }
        let res = self.log.write_all(&frame(&rec.encode()));
        self.latch(res);
        self.state = probe;
        self.log_frames += 1;
        if self.snapshot_every > 0 && self.log_frames >= self.snapshot_every {
            let res = self.snapshot();
            self.latch(res);
        }
    }

    fn state(&self) -> &DurableState {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fresh scratch directory under the system temp dir.
    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("bristle-store-test-{}", std::process::id()))
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A fixed, order-scrambled mutation sequence touching every table.
    fn workload() -> Vec<WalRecord> {
        vec![
            WalRecord::Identity { key: 42, incarnation: 1 },
            WalRecord::RecordPut {
                subject: 900,
                host: 3,
                router: 1,
                epoch: 11,
                incarnation: 0,
                seq: 1,
                published_at: 10,
                ttl: 600,
            },
            WalRecord::Register { target: 7, capacity: 4 },
            WalRecord::LeaseGrant { subject: 900, expires: 610 },
            WalRecord::RecordPut {
                subject: 100,
                host: 9,
                router: 2,
                epoch: 12,
                incarnation: 2,
                seq: 5,
                published_at: 20,
                ttl: 600,
            },
            WalRecord::Deregister { target: 7 },
            WalRecord::Register { target: 8, capacity: 2 },
            WalRecord::Identity { key: 42, incarnation: 2 },
            WalRecord::RecordRemove { subject: 900 },
            WalRecord::LeaseRevoke { subject: 900 },
            WalRecord::LeaseGrant { subject: 100, expires: 620 },
        ]
    }

    fn folded(recs: &[WalRecord]) -> DurableState {
        let mut s = DurableState::new();
        for r in recs {
            s.apply(r);
        }
        s
    }

    #[test]
    fn reopen_replays_to_identical_state() {
        let dir = scratch("reopen");
        {
            let mut b = WalBackend::open(&dir, 0).unwrap();
            for r in workload() {
                b.apply(&r);
            }
            assert!(b.io_error().is_none());
        }
        let b = WalBackend::open(&dir, 0).unwrap();
        assert_eq!(*b.state(), folded(&workload()));
        assert!(b.replay_report().dropped.is_none());
        assert_eq!(b.replay_report().log_records, b.log_frames() as usize);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compacts_and_preserves_state() {
        let dir = scratch("snapshot");
        {
            let mut b = WalBackend::open(&dir, 0).unwrap();
            for r in workload() {
                b.apply(&r);
            }
            b.snapshot().unwrap();
            assert_eq!(b.log_frames(), 0, "snapshot truncates the log");
            // Post-snapshot mutations land in the fresh log.
            b.apply(&WalRecord::Register { target: 55, capacity: 1 });
        }
        let b = WalBackend::open(&dir, 0).unwrap();
        let mut want = folded(&workload());
        want.apply(&WalRecord::Register { target: 55, capacity: 1 });
        assert_eq!(*b.state(), want);
        assert!(b.replay_report().snapshot_records > 0);
        assert_eq!(b.replay_report().log_records, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_snapshot_fires_at_threshold() {
        let dir = scratch("auto-snap");
        let mut b = WalBackend::open(&dir, 3).unwrap();
        for r in workload() {
            b.apply(&r);
        }
        assert!(b.log_frames() < 3, "log stays below the snapshot threshold");
        assert!(dir.join("snapshot.bin").exists());
        assert!(b.io_error().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn noop_records_are_not_logged() {
        let dir = scratch("noop");
        let mut b = WalBackend::open(&dir, 0).unwrap();
        let reg = WalRecord::Register { target: 7, capacity: 4 };
        b.apply(&reg);
        let after_first = b.log_frames();
        for _ in 0..10 {
            b.apply(&reg);
        }
        assert_eq!(b.log_frames(), after_first, "idempotent re-applies do not grow the log");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_byte_of_the_last_record_is_tolerated() {
        let dir = scratch("torn");
        {
            let mut b = WalBackend::open(&dir, 0).unwrap();
            for r in workload() {
                b.apply(&r);
            }
        }
        let log_path = dir.join("wal.log");
        let full = std::fs::read(&log_path).unwrap();
        // Find where the last frame starts by walking the frames.
        let body = &full[LOG_MAGIC.len()..];
        let mut pos = 0usize;
        let mut last_start = 0usize;
        while pos < body.len() {
            last_start = pos;
            let len = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 8 + len;
        }
        let last_abs = LOG_MAGIC.len() + last_start;
        let want_without_last = {
            let w = workload();
            folded(&w[..w.len() - 1])
        };

        // Cut the file at every byte boundary inside the last frame:
        // from "frame entirely missing" up to "one byte short".
        for cut in last_abs..full.len() - 1 {
            std::fs::write(&log_path, &full[..cut]).unwrap();
            let b = WalBackend::open(&dir, 0)
                .unwrap_or_else(|e| panic!("cut at {cut} must not fail open: {e}"));
            assert_eq!(*b.state(), want_without_last, "cut at {cut}");
            if cut == last_abs {
                // A clean cut at a frame boundary is not damage.
                assert!(b.replay_report().dropped.is_none(), "cut at {cut}");
            } else {
                let note = b.replay_report().dropped.as_ref();
                assert!(note.is_some(), "cut at {cut} must report the dropped tail");
            }
            // The file was truncated back to the last good frame, so a
            // second open sees a clean log.
            drop(b);
            let again = WalBackend::open(&dir, 0).unwrap();
            assert!(again.replay_report().dropped.is_none(), "cut at {cut}: second open clean");
            assert_eq!(*again.state(), want_without_last, "cut at {cut}: second open state");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_drops_the_tail() {
        let dir = scratch("corrupt");
        {
            let mut b = WalBackend::open(&dir, 0).unwrap();
            for r in workload() {
                b.apply(&r);
            }
        }
        let log_path = dir.join("wal.log");
        let mut bytes = std::fs::read(&log_path).unwrap();
        // Flip one bit in the last byte (inside the final payload).
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&log_path, &bytes).unwrap();
        let b = WalBackend::open(&dir, 0).unwrap();
        let note = b.replay_report().dropped.clone().expect("corruption must be reported");
        assert!(note.contains("checksum mismatch"), "note: {note}");
        let w = workload();
        assert_eq!(*b.state(), folded(&w[..w.len() - 1]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn implausible_length_field_is_contained() {
        let dir = scratch("badlen");
        {
            let mut b = WalBackend::open(&dir, 0).unwrap();
            b.apply(&WalRecord::Identity { key: 1, incarnation: 1 });
        }
        let log_path = dir.join("wal.log");
        let mut bytes = std::fs::read(&log_path).unwrap();
        // Append a frame header claiming a gigantic payload.
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&log_path, &bytes).unwrap();
        let b = WalBackend::open(&dir, 0).unwrap();
        assert!(b.replay_report().dropped.as_ref().unwrap().contains("implausible"));
        assert_eq!(b.state().identity, Some((1, 1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_magic_is_a_hard_error() {
        let dir = scratch("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal.log"), b"NOTMAGIC").unwrap();
        assert!(WalBackend::open(&dir, 0).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshots_are_byte_stable() {
        // The same state reached via different application orders (the
        // canonical sequence is one such order) snapshots identically:
        // iteration is over sorted BTreeMaps, not insertion order.
        let a = folded(&workload());
        let b = folded(&a.to_records());
        assert_eq!(a, b);
        assert_eq!(WalBackend::snapshot_bytes(&a), WalBackend::snapshot_bytes(&b));
        // And writing the same state twice produces identical files.
        let dir = scratch("stable");
        let mut w = WalBackend::open(&dir, 0).unwrap();
        for r in workload() {
            w.apply(&r);
        }
        w.snapshot().unwrap();
        let first = std::fs::read(dir.join("snapshot.bin")).unwrap();
        w.snapshot().unwrap();
        let second = std::fs::read(dir.join("snapshot.bin")).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, WalBackend::snapshot_bytes(w.state()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Golden test: the snapshot encoding of a small fixed state. If
    /// this changes, the on-disk format changed — bump the magic.
    #[test]
    fn golden_snapshot_encoding() {
        let mut s = DurableState::new();
        s.apply(&WalRecord::Identity { key: 2, incarnation: 3 });
        s.apply(&WalRecord::Register { target: 5, capacity: 1 });
        let bytes = WalBackend::snapshot_bytes(&s);
        let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        let golden = concat!(
            // magic "BRSNP1\0\0"
            "4252534e50310000",
            // frame: len=17, fnv1a32, payload tag=0 key=2 inc=3
            "11000000",
            "7ebd1cea",
            "00",
            "0200000000000000",
            "0300000000000000",
            // frame: len=13, fnv1a32, payload tag=3 target=5 cap=1
            "0d000000",
            "f6f1b5e2",
            "03",
            "0500000000000000",
            "01000000",
        );
        assert_eq!(hex, golden, "snapshot encoding drifted from the golden bytes");
    }

    #[test]
    fn double_open_fails_fast_until_the_first_is_dropped() {
        let dir = scratch("double-open");
        let first = WalBackend::open(&dir, 0).unwrap();
        let second = WalBackend::open(&dir, 0);
        assert!(second.is_err(), "second live open must be refused");
        assert_eq!(second.unwrap_err().kind(), ErrorKind::AddrInUse);
        drop(first);
        // Dropping the first releases the lock: the directory opens again.
        let third = WalBackend::open(&dir, 0).expect("open succeeds after release");
        drop(third);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_a_dead_process_is_broken_silently() {
        let dir = scratch("stale-lock");
        std::fs::create_dir_all(&dir).unwrap();
        // A crash leftover: a lock file naming a PID that cannot be
        // running (PIDs this large are rejected by the kernel).
        std::fs::write(dir.join("wal.lock"), "4194305").unwrap();
        let b = WalBackend::open(&dir, 0).expect("stale lock must not require manual cleanup");
        drop(b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The PID-reuse regression: a lock file naming a PID that is alive
    /// *today* but whose recorded start-time token belongs to a dead
    /// previous owner of that number must be broken, not honored. PID 1
    /// is guaranteed alive, so writing it with a token no real process
    /// can have (0 is the idle task, never an owner of this lock)
    /// reproduces exactly the reuse shape.
    #[test]
    fn reused_pid_with_mismatched_token_is_broken() {
        let dir = scratch("pid-reuse");
        std::fs::create_dir_all(&dir).unwrap();
        if pid_birth(1).is_none() {
            return; // no /proc: the token layer is inert here.
        }
        std::fs::write(dir.join("wal.lock"), "1 0").unwrap();
        let b =
            WalBackend::open(&dir, 0).expect("a recycled PID must not wedge the directory forever");
        drop(b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The counterpart: the same live PID with its *real* token is a
    /// genuine foreign holder and must still be refused — the token
    /// check tightens lock breaking, it must not loosen it.
    #[test]
    fn live_pid_with_matching_token_is_still_refused() {
        let dir = scratch("pid-live-token");
        std::fs::create_dir_all(&dir).unwrap();
        let Some(birth) = pid_birth(1) else {
            return; // no /proc: nothing to distinguish.
        };
        std::fs::write(dir.join("wal.lock"), format!("1 {birth}")).unwrap();
        let second = WalBackend::open(&dir, 0);
        assert!(second.is_err(), "a live same-instance holder must be refused");
        assert_eq!(second.unwrap_err().kind(), ErrorKind::AddrInUse);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Token-less lock files (the previous on-disk format) keep the old
    /// semantics: liveness of the PID alone decides.
    #[test]
    fn legacy_pid_only_lock_from_a_live_process_is_refused() {
        let dir = scratch("legacy-lock");
        std::fs::create_dir_all(&dir).unwrap();
        if !pid_alive(1) {
            return;
        }
        std::fs::write(dir.join("wal.lock"), "1").unwrap();
        let second = WalBackend::open(&dir, 0);
        assert!(second.is_err(), "legacy live lock must still be refused");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_lock_contents_are_treated_as_stale() {
        let dir = scratch("garbage-lock");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal.lock"), "not-a-pid").unwrap();
        let b = WalBackend::open(&dir, 0).expect("unreadable lock is a crash artifact");
        drop(b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_open_releases_the_lock() {
        let dir = scratch("failed-open-release");
        std::fs::create_dir_all(&dir).unwrap();
        // A corrupt snapshot makes open fail *after* the lock is taken.
        std::fs::write(dir.join("snapshot.bin"), b"WRONGMAGIC").unwrap();
        assert!(WalBackend::open(&dir, 0).is_err(), "corrupt snapshot is a hard error");
        // The failure must not leave the directory wedged.
        std::fs::remove_file(dir.join("snapshot.bin")).unwrap();
        let b = WalBackend::open(&dir, 0).expect("lock released by the failed open");
        drop(b);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
