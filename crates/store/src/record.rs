//! Typed mutation records and their binary codec.
//!
//! Every change to a stationary node's durable state is expressed as one
//! [`WalRecord`]. The encoding follows the `bristle-proto::wire`
//! conventions — little-endian fixed-width integers, one leading tag
//! byte per variant, total decoding that returns errors and never
//! panics — but is deliberately self-contained so this crate sits below
//! everything else in the workspace with zero dependencies.
//!
//! Identifiers are raw `u64` keys and raw `u32` host/router ids rather
//! than the overlay's newtypes, for the same reason: the store must not
//! depend on the layers it serves.

use std::fmt;

/// One durable mutation. Applying the full sequence of records a node
/// has ever emitted reproduces its [`DurableState`](crate::DurableState)
/// exactly — replay *is* the fold, by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecord {
    /// The node's own identity: overlay key and liveness incarnation.
    /// Re-emitted whenever the incarnation is bumped.
    Identity {
        /// The node's overlay key.
        key: u64,
        /// The SWIM-style incarnation number.
        incarnation: u64,
    },
    /// A location record stored (or overwritten) for `subject`.
    RecordPut {
        /// The mobile node the record locates.
        subject: u64,
        /// Raw host id of the subject's network address.
        host: u32,
        /// Raw router id the subject was attached to.
        router: u32,
        /// Attachment epoch at publish time (stale epochs mean the
        /// address no longer reaches the subject).
        epoch: u64,
        /// The subject's incarnation at publish time.
        incarnation: u64,
        /// The subject's per-move sequence number.
        seq: u64,
        /// Virtual time the record was published.
        published_at: u64,
        /// Record time-to-live in ticks.
        ttl: u64,
    },
    /// The location record for `subject` was removed (unpublish).
    RecordRemove {
        /// The subject whose record is dropped.
        subject: u64,
    },
    /// This node registered its interest in `target` (it holds the
    /// target's state-pair and joins its LDT).
    Register {
        /// The mobile node registered to.
        target: u64,
        /// The capacity this node advertised when registering.
        capacity: u32,
    },
    /// The registration to `target` was dissolved.
    Deregister {
        /// The target deregistered from.
        target: u64,
    },
    /// A lease on `subject`'s updates granted to this node.
    LeaseGrant {
        /// The subject whose updates are leased.
        subject: u64,
        /// Absolute virtual-time expiry of the lease.
        expires: u64,
    },
    /// The lease on `subject` was revoked or expired.
    LeaseRevoke {
        /// The subject whose lease ends.
        subject: u64,
    },
}

/// Tag bytes, one per [`WalRecord`] variant. Appending-only: new
/// variants take fresh tags, existing tags never change meaning.
mod tag {
    pub const IDENTITY: u8 = 0;
    pub const RECORD_PUT: u8 = 1;
    pub const RECORD_REMOVE: u8 = 2;
    pub const REGISTER: u8 = 3;
    pub const DEREGISTER: u8 = 4;
    pub const LEASE_GRANT: u8 = 5;
    pub const LEASE_REVOKE: u8 = 6;
}

/// Why a byte sequence failed to decode as a [`WalRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the variant's fields were complete.
    Truncated,
    /// The leading tag byte names no known variant.
    BadTag(u8),
    /// Bytes remained after a complete variant was decoded.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated mid-record"),
            CodecError::BadTag(t) => write!(f, "unknown record tag {t}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after record"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Little-endian payload writer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(tag: u8) -> Enc {
        Enc { buf: vec![tag] }
    }
    fn u32(mut self, v: u32) -> Enc {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn u64(mut self, v: u64) -> Enc {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }
}

/// Little-endian payload reader over a borrowed slice.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

impl WalRecord {
    /// Encodes the record as a tag byte followed by its fields.
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            WalRecord::Identity { key, incarnation } => {
                Enc::new(tag::IDENTITY).u64(key).u64(incarnation).buf
            }
            WalRecord::RecordPut {
                subject,
                host,
                router,
                epoch,
                incarnation,
                seq,
                published_at,
                ttl,
            } => {
                Enc::new(tag::RECORD_PUT)
                    .u64(subject)
                    .u32(host)
                    .u32(router)
                    .u64(epoch)
                    .u64(incarnation)
                    .u64(seq)
                    .u64(published_at)
                    .u64(ttl)
                    .buf
            }
            WalRecord::RecordRemove { subject } => Enc::new(tag::RECORD_REMOVE).u64(subject).buf,
            WalRecord::Register { target, capacity } => {
                Enc::new(tag::REGISTER).u64(target).u32(capacity).buf
            }
            WalRecord::Deregister { target } => Enc::new(tag::DEREGISTER).u64(target).buf,
            WalRecord::LeaseGrant { subject, expires } => {
                Enc::new(tag::LEASE_GRANT).u64(subject).u64(expires).buf
            }
            WalRecord::LeaseRevoke { subject } => Enc::new(tag::LEASE_REVOKE).u64(subject).buf,
        }
    }

    /// Decodes one record from `payload`, consuming every byte.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, CodecError> {
        let mut d = Dec::new(payload);
        let rec = match d.u8()? {
            tag::IDENTITY => WalRecord::Identity { key: d.u64()?, incarnation: d.u64()? },
            tag::RECORD_PUT => WalRecord::RecordPut {
                subject: d.u64()?,
                host: d.u32()?,
                router: d.u32()?,
                epoch: d.u64()?,
                incarnation: d.u64()?,
                seq: d.u64()?,
                published_at: d.u64()?,
                ttl: d.u64()?,
            },
            tag::RECORD_REMOVE => WalRecord::RecordRemove { subject: d.u64()? },
            tag::REGISTER => WalRecord::Register { target: d.u64()?, capacity: d.u32()? },
            tag::DEREGISTER => WalRecord::Deregister { target: d.u64()? },
            tag::LEASE_GRANT => WalRecord::LeaseGrant { subject: d.u64()?, expires: d.u64()? },
            tag::LEASE_REVOKE => WalRecord::LeaseRevoke { subject: d.u64()? },
            t => return Err(CodecError::BadTag(t)),
        };
        d.finish()?;
        Ok(rec)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// One instance of every variant, with distinct non-default field
    /// values so swapped fields can't round-trip by accident.
    pub(crate) fn every_record() -> Vec<WalRecord> {
        vec![
            WalRecord::Identity { key: 0xDEAD_BEEF_0102_0304, incarnation: 7 },
            WalRecord::RecordPut {
                subject: 0x0102_0304_0506_0708,
                host: 41,
                router: 9,
                epoch: 19,
                incarnation: 3,
                seq: 1_000_001,
                published_at: 777,
                ttl: 600,
            },
            WalRecord::RecordRemove { subject: 0xFFFF_0000_FFFF_0000 },
            WalRecord::Register { target: 0xABCD, capacity: 12 },
            WalRecord::Deregister { target: 0xABCD },
            WalRecord::LeaseGrant { subject: 5, expires: u64::MAX },
            WalRecord::LeaseRevoke { subject: 5 },
        ]
    }

    #[test]
    fn every_record_round_trips() {
        for rec in every_record() {
            let bytes = rec.encode();
            let back = WalRecord::decode(&bytes).unwrap_or_else(|e| panic!("{rec:?}: {e}"));
            assert_eq!(back, rec, "round trip changed the record");
            // Re-encoding the decoded record is byte-identical: the
            // codec is canonical.
            assert_eq!(back.encode(), bytes, "{rec:?} re-encode differs");
        }
    }

    #[test]
    fn tags_are_distinct() {
        let mut tags: Vec<u8> = every_record().iter().map(|r| r.encode()[0]).collect();
        let n = tags.len();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), n, "two variants share a tag byte");
    }

    #[test]
    fn truncation_at_every_length_is_an_error_not_a_panic() {
        for rec in every_record() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                let err = WalRecord::decode(&bytes[..cut]).unwrap_err();
                assert_eq!(err, CodecError::Truncated, "{rec:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for rec in every_record() {
            let mut bytes = rec.encode();
            bytes.push(0);
            assert_eq!(WalRecord::decode(&bytes).unwrap_err(), CodecError::TrailingBytes);
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(WalRecord::decode(&[200]).unwrap_err(), CodecError::BadTag(200));
        assert_eq!(WalRecord::decode(&[]).unwrap_err(), CodecError::Truncated);
    }
}
