//! Model-based testing: arbitrary operation sequences against a
//! [`BristleSystem`] must preserve its structural invariants.
//!
//! Invariants checked after every operation:
//!
//! 1. key bookkeeping is consistent — `stationary_keys ∪ mobile_keys`
//!    equals the node-info map, with no overlap;
//! 2. the mobile layer contains *every* node; the stationary layer
//!    contains exactly the stationary ones;
//! 3. every mobile node's location is discoverable (modulo deliberately
//!    injected abrupt failures, which may lose un-replicated records);
//! 4. routing from any live node terminates at the owner;
//! 5. the registry never references the *target* of a dropped node.
//!
//! The always-on tests drive random op sequences with seeded [`Pcg64`]
//! sampling (offline-safe). The original `proptest` versions live in the
//! gated module at the bottom; enabling the `proptest` feature requires
//! restoring the proptest dev-dependency.

use bristle_core::config::BristleConfig;
use bristle_core::naming::Mobility;
use bristle_core::system::{BristleBuilder, BristleSystem};
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::TransitStubConfig;

/// The operations the model exercises.
#[derive(Debug, Clone)]
enum Op {
    MoveMobile(usize),
    JoinMobile,
    JoinStationary,
    LeaveMobile(usize),
    LeaveStationary(usize),
    Route(usize, usize),
    Tick(u64),
    Upkeep,
}

fn random_op(rng: &mut Pcg64) -> Op {
    match rng.index(8) {
        0 => Op::MoveMobile(rng.next_u64() as usize),
        1 => Op::JoinMobile,
        2 => Op::JoinStationary,
        3 => Op::LeaveMobile(rng.next_u64() as usize),
        4 => Op::LeaveStationary(rng.next_u64() as usize),
        5 => Op::Route(rng.next_u64() as usize, rng.next_u64() as usize),
        6 => Op::Tick(rng.range_inclusive(1, 499)),
        _ => Op::Upkeep,
    }
}

fn check_invariants(sys: &mut BristleSystem) {
    // (1) + (2): bookkeeping consistency.
    let n_stat = sys.stationary_keys().len();
    let n_mob = sys.mobile_keys().len();
    assert_eq!(sys.len(), n_stat + n_mob, "info map vs key lists");
    assert_eq!(sys.mobile.len(), n_stat + n_mob, "mobile layer holds everyone");
    assert_eq!(sys.stationary.len(), n_stat, "stationary layer holds the fixed nodes");
    for &k in sys.stationary_keys().to_vec().iter() {
        assert!(sys.stationary.contains(k));
        assert!(sys.mobile.contains(k));
        assert!(!sys.is_mobile(k));
    }
    for &k in sys.mobile_keys().to_vec().iter() {
        assert!(!sys.stationary.contains(k));
        assert!(sys.mobile.contains(k));
        assert!(sys.is_mobile(k));
    }
    // (4): routing terminates at the owner, from a few sources.
    let all: Vec<_> = sys.mobile.keys().collect();
    if all.len() >= 2 {
        let src = all[0];
        let dst = all[all.len() / 2];
        let rep = sys.route_mobile(src, dst).expect("route");
        assert_eq!(rep.terminus, sys.mobile.owner(dst).expect("owner"));
    }
    // (5): registry targets all live and mobile.
    let targets: Vec<_> = sys.registry.iter().map(|(t, _)| t).collect();
    for t in targets {
        assert!(sys.is_mobile(t), "registry target {t} not a live mobile node");
    }
}

fn apply(sys: &mut BristleSystem, op: &Op) {
    match op {
        Op::MoveMobile(i) => {
            let mobiles = sys.mobile_keys().to_vec();
            if !mobiles.is_empty() {
                sys.move_node(mobiles[i % mobiles.len()], None).expect("move");
            }
        }
        Op::JoinMobile => {
            sys.join_node(Mobility::Mobile).expect("join mobile");
        }
        Op::JoinStationary => {
            sys.join_node(Mobility::Stationary).expect("join stationary");
        }
        Op::LeaveMobile(i) => {
            let mobiles = sys.mobile_keys().to_vec();
            if mobiles.len() > 1 {
                sys.leave_node(mobiles[i % mobiles.len()]).expect("leave mobile");
            }
        }
        Op::LeaveStationary(i) => {
            let stationaries = sys.stationary_keys().to_vec();
            if stationaries.len() > 4 {
                sys.leave_node(stationaries[i % stationaries.len()]).expect("leave stationary");
            }
        }
        Op::Route(a, b) => {
            let all: Vec<_> = sys.mobile.keys().collect();
            if all.len() >= 2 {
                let src = all[a % all.len()];
                let dst = all[b % all.len()];
                sys.route_mobile(src, dst).expect("route");
            }
        }
        Op::Tick(dt) => {
            sys.tick(*dt);
        }
        Op::Upkeep => {
            sys.run_upkeep().expect("upkeep");
        }
    }
}

fn build_system(seed: u64, mobiles: usize) -> BristleSystem {
    BristleBuilder::new(seed)
        .stationary_nodes(25)
        .mobile_nodes(mobiles)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("builds")
}

#[test]
fn random_op_sequences_preserve_invariants_seeded() {
    let mut rng = Pcg64::seed_from_u64(0xD1);
    for _ in 0..24 {
        let seed = rng.index(1000) as u64;
        let n_ops = 1 + rng.index(24);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        let mut sys = build_system(seed, 10);
        check_invariants(&mut sys);
        for op in &ops {
            apply(&mut sys, op);
            check_invariants(&mut sys);
        }
    }
}

#[test]
fn locations_stay_discoverable_under_graceful_ops_seeded() {
    // No abrupt failures in the op set, so invariant (3) must hold:
    // every live mobile node's location resolves (early binding keeps
    // records fresh through upkeep).
    let mut rng = Pcg64::seed_from_u64(0xD2);
    for _ in 0..24 {
        let seed = rng.index(1000) as u64;
        let n_ops = 1 + rng.index(19);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        let mut sys = build_system(seed, 8);
        for op in &ops {
            apply(&mut sys, op);
        }
        // Keep the repository fresh if time has passed.
        sys.run_upkeep().expect("upkeep");
        let watcher = sys.stationary_keys()[0];
        for m in sys.mobile_keys().to_vec() {
            let disc = sys.discover(watcher, m).expect("discover");
            assert!(disc.resolved.is_some(), "lost location of {m}");
        }
    }
}

#[cfg(feature = "proptest")]
mod proptest_based {
    use super::*;
    use proptest::prelude::*;

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<usize>()).prop_map(Op::MoveMobile),
            Just(Op::JoinMobile),
            Just(Op::JoinStationary),
            (any::<usize>()).prop_map(Op::LeaveMobile),
            (any::<usize>()).prop_map(Op::LeaveStationary),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Route(a, b)),
            (1u64..500).prop_map(Op::Tick),
            Just(Op::Upkeep),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn random_op_sequences_preserve_invariants(
            seed in 0u64..1000,
            ops in prop::collection::vec(op_strategy(), 1..25),
        ) {
            let mut sys = build_system(seed, 10);
            check_invariants(&mut sys);
            for op in &ops {
                apply(&mut sys, op);
                check_invariants(&mut sys);
            }
        }

        #[test]
        fn locations_stay_discoverable_under_graceful_ops(
            seed in 0u64..1000,
            ops in prop::collection::vec(op_strategy(), 1..20),
        ) {
            let mut sys = build_system(seed, 8);
            for op in &ops {
                apply(&mut sys, op);
            }
            // Keep the repository fresh if time has passed.
            sys.run_upkeep().expect("upkeep");
            let watcher = sys.stationary_keys()[0];
            for m in sys.mobile_keys().to_vec() {
                let disc = sys.discover(watcher, m).expect("discover");
                prop_assert!(disc.resolved.is_some(), "lost location of {m}");
            }
        }
    }
}
