//! Mobile-layer routing with address resolution (paper Figure 2) and the
//! `_discovery` operation (§2.3.2).
//!
//! Forwarding in the mobile layer follows the paper's `_route` pseudocode:
//! pick the state-pair `p` closest to the destination key; if `p.addr` is
//! null or invalid, resolve it through the stationary layer
//! (`_discovery`), then forward. The simulator distinguishes what a node
//! *believes* (cached address + unexpired lease) from what is *true*
//! (attachment epoch still matching): a confidently-held stale address
//! costs a wasted delivery attempt before the discovery kicks in.

use bristle_overlay::addr::NetAddr;
use bristle_overlay::key::Key;
use bristle_overlay::meter::MessageKind;

use crate::error::{BristleError, Result};
use crate::naming::Mobility;
use crate::system::BristleSystem;

/// Outcome of a `_discovery` for one subject.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryReport {
    /// The resolved address, if any replica held a record.
    pub resolved: Option<NetAddr>,
    /// Application-level hops spent (injection + stationary route + reply).
    pub hops: usize,
    /// Physical path cost spent.
    pub path_cost: u64,
}

/// Outcome of routing one message through the mobile layer.
#[derive(Debug, Clone)]
pub struct MobileRouteReport {
    /// The node that owns the target key (delivery point).
    pub terminus: Key,
    /// Plain forwarding hops in the mobile layer.
    pub forward_hops: usize,
    /// Hops spent inside `_discovery` operations.
    pub discovery_hops: usize,
    /// Number of `_discovery` operations performed.
    pub discoveries: usize,
    /// Discoveries that found no usable record.
    pub failed_discoveries: usize,
    /// Delivery attempts to confidently-held but stale addresses.
    pub stale_attempts: usize,
    /// Total physical path cost (forwarding + discoveries + waste).
    pub path_cost: u64,
    /// Physical cost of the forwarding hops alone — what an oracle with
    /// perfectly fresh addresses would have paid for the same route.
    pub forward_cost: u64,
}

impl MobileRouteReport {
    /// Total application-level hops, the paper's Fig. 7(a) metric:
    /// forwarding plus discovery traffic.
    pub fn total_hops(&self) -> usize {
        self.forward_hops + self.discovery_hops + self.stale_attempts
    }

    /// Mobility-induced delivery overhead: total paid cost over the cost
    /// of the forwarding hops alone (1.0 when no resolution was needed).
    pub fn mobility_overhead(&self) -> f64 {
        if self.forward_cost == 0 {
            1.0
        } else {
            self.path_cost as f64 / self.forward_cost as f64
        }
    }
}

impl BristleSystem {
    /// Resolves `subject`'s network address through the stationary layer:
    /// inject at `from`'s stationary entry point, route to the record
    /// owner (probing replicas if needed), and reply to `from`.
    ///
    /// On success the resolver grants `from` a lease on `subject` and
    /// patches `from`'s cached state-pair — the paper's "Z replies the
    /// resolved network address to X, which then updates its local
    /// state-pair from `<k, null>` to `<k, a>`".
    pub fn discover(&mut self, from: Key, subject: Key) -> Result<DiscoveryReport> {
        let entry = self.entry_stationary_for(from)?;
        let from_router = self.router_of(from)?;
        let mut hops = 0usize;
        let mut path_cost = 0u64;

        // Injection hop (skipped when `from` is itself the entry point).
        if entry != from {
            let cost = self.distances().distance(from_router, self.router_of(entry)?);
            self.meter.record(MessageKind::DiscoveryHop, cost);
            hops += 1;
            path_cost += cost;
        }

        // Route within the stationary layer to the record's owner.
        let dcache = self.distances_arc();
        let route = self.stationary.route_as(
            entry,
            subject,
            MessageKind::DiscoveryHop,
            &self.attachments,
            &dcache,
            &mut self.meter,
        )?;
        hops += route.hop_count();
        path_cost += route.path_cost;

        // Read the record at the owner, probing successor replicas if the
        // owner has no copy (it may have just joined, or the publisher's
        // copy died with a failed node).
        let mut record = None;
        let mut reply_from = route.terminus();
        let replicas = self.stationary.replica_set(subject, self.config().location_replicas)?;
        let mut prev_router = self.router_of(route.terminus())?;
        for &replica in &replicas {
            if replica != route.terminus() {
                let r = self.router_of(replica)?;
                let cost = self.distances().distance(prev_router, r);
                self.meter.record(MessageKind::DiscoveryHop, cost);
                hops += 1;
                path_cost += cost;
                prev_router = r;
            }
            if let Some(rec) = self.stationary.node(replica)?.store.get(&subject) {
                record = Some(*rec);
                reply_from = replica;
                break;
            }
        }

        // A record served by anyone but the route terminus means the
        // primary lost its copy (death, or a just-joined owner): the
        // replica chain absorbed the failure.
        if record.is_some() && reply_from != route.terminus() {
            self.meter.bump(MessageKind::ReplicaFailover, 1);
        }

        // Reply hop back to the asker.
        let cost = self.distances().distance(self.router_of(reply_from)?, from_router);
        self.meter.record(MessageKind::DiscoveryHop, cost);
        hops += 1;
        path_cost += cost;

        let resolved = record.map(|r| r.addr);
        if let Some(addr) = resolved {
            self.leases.grant(from, subject, self.clock.now(), self.config().lease_ttl);
            if let Ok(node) = self.mobile.node_mut(from) {
                if let Some(pair) = node.entry_mut(subject) {
                    pair.addr = Some(addr);
                }
            }
        }
        Ok(DiscoveryReport { resolved, hops, path_cost })
    }

    /// Routes a message from `src` toward `target` in the mobile layer,
    /// resolving mobile next-hops through the stationary layer whenever
    /// the cached state is null, unleased, or stale (paper Fig. 2).
    pub fn route_mobile(&mut self, src: Key, target: Key) -> Result<MobileRouteReport> {
        if !self.mobile.contains(src) {
            return Err(BristleError::UnknownNode(src));
        }
        let mut report = MobileRouteReport {
            terminus: src,
            forward_hops: 0,
            discovery_hops: 0,
            discoveries: 0,
            failed_discoveries: 0,
            stale_attempts: 0,
            path_cost: 0,
            forward_cost: 0,
        };
        let mut cur = src;
        while let Some(next) = self.mobile.next_hop(cur, target)? {
            let cur_router = self.router_of(cur)?;
            if self.node_info(next)?.mobility == Mobility::Mobile {
                let cached = self.mobile.node(cur)?.entry(next).and_then(|p| p.addr);
                let believed = cached.filter(|_| self.leases.is_fresh(cur, next, self.clock.now()));
                match believed {
                    Some(addr) if addr.is_valid(&self.attachments) => {
                        // Cached, leased, and actually current: forward directly.
                    }
                    other => {
                        if let Some(stale) = other {
                            // Confidently wrong: one wasted delivery attempt
                            // to the old attachment point.
                            let cost = self.distances().distance(cur_router, stale.router());
                            self.meter.record(MessageKind::RouteHop, cost);
                            report.stale_attempts += 1;
                            report.path_cost += cost;
                        }
                        let disc = self.discover(cur, next)?;
                        report.discoveries += 1;
                        report.discovery_hops += disc.hops;
                        report.path_cost += disc.path_cost;
                        if disc.resolved.is_none() {
                            report.failed_discoveries += 1;
                        }
                    }
                }
            }
            // Forward to the next node's true current attachment (after a
            // successful discovery the cached address equals it; if the
            // discovery failed we still charge the true cost, modelling an
            // eventual retry converging out of band).
            let next_router = self.router_of(next)?;
            let cost = self.distances().distance(cur_router, next_router);
            self.meter.record(MessageKind::RouteHop, cost);
            report.forward_hops += 1;
            report.path_cost += cost;
            report.forward_cost += cost;
            cur = next;
        }
        report.terminus = cur;
        Ok(report)
    }

    /// Stores application data under `data_key` in the mobile-layer
    /// HS-P2P: routes to the owner (Fig. 2 semantics) and stores there.
    pub fn store_data(
        &mut self,
        src: Key,
        data_key: Key,
        payload: Vec<u8>,
    ) -> Result<MobileRouteReport> {
        let report = self.route_mobile(src, data_key)?;
        self.mobile.node_mut(report.terminus)?.store.insert(data_key, payload);
        Ok(report)
    }

    /// Fetches application data stored under `data_key`, returning the
    /// payload (if present at the owner) and the route report.
    pub fn fetch_data(
        &mut self,
        src: Key,
        data_key: Key,
    ) -> Result<(Option<Vec<u8>>, MobileRouteReport)> {
        let report = self.route_mobile(src, data_key)?;
        let payload = self.mobile.node(report.terminus)?.store.get(&data_key).cloned();
        Ok((payload, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BristleConfig;
    use crate::system::BristleBuilder;
    use bristle_netsim::transit_stub::TransitStubConfig;

    fn system(n_stat: usize, n_mob: usize, seed: u64, cfg: BristleConfig) -> BristleSystem {
        BristleBuilder::new(seed)
            .stationary_nodes(n_stat)
            .mobile_nodes(n_mob)
            .topology(TransitStubConfig::tiny())
            .config(cfg)
            .build()
            .unwrap()
    }

    #[test]
    fn discovery_resolves_published_location() {
        let mut sys = system(40, 10, 1, BristleConfig::recommended());
        let asker = sys.stationary_keys()[0];
        let subject = sys.mobile_keys()[0];
        let rep = sys.discover(asker, subject).unwrap();
        let addr = rep.resolved.expect("published at build time");
        assert!(addr.is_valid(&sys.attachments));
        assert!(rep.hops >= 1);
        assert!(sys.leases.is_fresh(asker, subject, sys.clock.now()));
    }

    #[test]
    fn discovery_reflects_movement() {
        let mut sys = system(40, 10, 2, BristleConfig::recommended());
        let asker = sys.stationary_keys()[1];
        let subject = sys.mobile_keys()[0];
        let report = sys.move_node(subject, None).unwrap();
        let rep = sys.discover(asker, subject).unwrap();
        assert_eq!(rep.resolved.unwrap().router(), report.new_router);
    }

    #[test]
    fn route_reaches_owner_in_mobile_layer() {
        let mut sys = system(40, 20, 3, BristleConfig::recommended());
        let src = sys.stationary_keys()[0];
        let target = sys.mobile_keys()[3];
        let rep = sys.route_mobile(src, target).unwrap();
        assert_eq!(rep.terminus, sys.mobile.owner(target).unwrap());
        assert!(rep.forward_hops > 0 || src == rep.terminus);
    }

    #[test]
    fn stale_cache_triggers_discovery_after_move() {
        // Zero-lease config: every mobile hop must discover.
        let mut sys = system(30, 30, 4, BristleConfig::paper_scrambled());
        // Move every mobile node so cached addresses go stale for real.
        for m in sys.mobile_keys().to_vec() {
            sys.move_node(m, None).unwrap();
        }
        let src = sys.stationary_keys()[0];
        let mut any_discovery = false;
        for i in 0..10 {
            let target = sys.mobile_keys()[i];
            let rep = sys.route_mobile(src, target).unwrap();
            if rep.discoveries > 0 {
                any_discovery = true;
                assert!(rep.discovery_hops >= rep.discoveries);
            }
        }
        assert!(any_discovery, "routes to mobile keys must resolve addresses");
    }

    #[test]
    fn fresh_lease_avoids_discovery() {
        let mut sys = system(30, 10, 5, BristleConfig::recommended());
        let src = sys.stationary_keys()[0];
        let target = sys.mobile_keys()[0];
        // First route may discover; the second must reuse leases.
        sys.route_mobile(src, target).unwrap();
        let rep2 = sys.route_mobile(src, target).unwrap();
        assert_eq!(rep2.discoveries, 0, "leases should suppress rediscovery");
    }

    #[test]
    fn moved_node_with_live_lease_costs_a_stale_attempt() {
        let mut sys = system(30, 10, 6, BristleConfig::recommended());
        let src = sys.stationary_keys()[0];
        let target = sys.mobile_keys()[0];
        // Prime caches along the path.
        sys.route_mobile(src, target).unwrap();
        // Move the target but *suppress* its LDT advertisement by moving
        // the host directly (simulating a lost update).
        let host = sys.node_info(target).unwrap().host;
        let new_router = sys.stub_routers()[0];
        sys.attachments.move_host(host, new_router);
        let rep = sys.route_mobile(src, target).unwrap();
        // The hop *into* the target (if the route ends there with a primed
        // lease) pays a wasted attempt then rediscovers.
        if rep.terminus == target && rep.discoveries > 0 {
            assert!(rep.stale_attempts > 0);
        }
    }

    #[test]
    fn store_and_fetch_roundtrip() {
        let mut sys = system(30, 10, 7, BristleConfig::recommended());
        let src = sys.stationary_keys()[0];
        let reader = sys.mobile_keys()[2];
        let data_key = Key(0x1234_5678_9abc_def0);
        sys.store_data(src, data_key, b"bristle".to_vec()).unwrap();
        let (payload, rep) = sys.fetch_data(reader, data_key).unwrap();
        assert_eq!(payload.as_deref(), Some(&b"bristle"[..]));
        assert_eq!(rep.terminus, sys.mobile.owner(data_key).unwrap());
    }

    #[test]
    fn data_survives_owner_movement() {
        // The paper's end-to-end-semantics claim: moving a node does not
        // orphan the data it owns, because its overlay identity (and thus
        // ownership) is retained.
        let mut sys = system(20, 20, 8, BristleConfig::recommended());
        let src = sys.stationary_keys()[0];
        // Pick a data key owned by a mobile node.
        let data_key = {
            let mut k = None;
            for i in 0..256u64 {
                // Sweep the whole ring so some candidate lands in the
                // mobile key band regardless of the naming scheme.
                let cand = Key(i.wrapping_mul(u64::MAX / 256 + 1));
                if sys.is_mobile(sys.mobile.owner(cand).unwrap()) {
                    k = Some(cand);
                    break;
                }
            }
            k.expect("some key owned by a mobile node")
        };
        sys.store_data(src, data_key, vec![42]).unwrap();
        let owner = sys.mobile.owner(data_key).unwrap();
        sys.move_node(owner, None).unwrap();
        let (payload, _) = sys.fetch_data(src, data_key).unwrap();
        assert_eq!(payload, Some(vec![42]), "Type-A systems would lose this");
    }

    #[test]
    fn route_from_unknown_source_errors() {
        let mut sys = system(10, 0, 9, BristleConfig::recommended());
        let err = sys.route_mobile(Key(0xdead), Key(1)).unwrap_err();
        assert_eq!(err, BristleError::UnknownNode(Key(0xdead)));
    }

    #[test]
    fn total_hops_accounts_all_traffic() {
        let mut sys = system(30, 30, 10, BristleConfig::paper_clustered());
        for m in sys.mobile_keys().to_vec() {
            sys.move_node(m, None).unwrap();
        }
        let src = sys.stationary_keys()[0];
        let dst = sys.stationary_keys()[7];
        let rep = sys.route_mobile(src, dst).unwrap();
        assert_eq!(rep.total_hops(), rep.forward_hops + rep.discovery_hops + rep.stale_attempts);
    }
}
