//! Lease (TTL) management for cached states.
//!
//! "Each state stored in a Bristle node appeared in the mobile layer is
//! thus associated with a time-to-live (TTL) value, which indicates the
//! valid lifetime of the state. Once the contract of a state expires, the
//! state is no longer valid." (paper §2.3.2)
//!
//! A [`LeaseTable`] tracks, per (holder, subject) pair, until when the
//! holder may trust its cached copy of the subject's network address.

use std::collections::HashMap;

use bristle_overlay::key::Key;

use crate::time::SimTime;

/// One lease contract: valid until `expires` (exclusive).
///
/// TTL boundary convention (shared with
/// [`crate::location::LocationRecord::is_expired`]): a contract granted
/// at `t` for `ttl` ticks is valid on the half-open window
/// `[t, t + ttl)` — still valid at `t + ttl - 1`, invalid exactly at
/// `t + ttl`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// First instant at which the lease is no longer valid.
    pub expires: SimTime,
}

impl Lease {
    /// A lease granted at `now` for `ttl` ticks.
    pub fn granted(now: SimTime, ttl: u64) -> Lease {
        Lease { expires: now.plus(ttl) }
    }

    /// Whether the lease is still valid at `now`.
    pub fn is_valid(&self, now: SimTime) -> bool {
        now < self.expires
    }
}

/// All leases held across the system, keyed by (holder, subject).
///
/// # Examples
///
/// ```
/// use bristle_core::lease::LeaseTable;
/// use bristle_core::time::SimTime;
/// use bristle_overlay::key::Key;
///
/// let mut leases = LeaseTable::new();
/// leases.grant(Key(1), Key(2), SimTime(0), 10);
/// assert!(leases.is_fresh(Key(1), Key(2), SimTime(9)));
/// assert!(!leases.is_fresh(Key(1), Key(2), SimTime(10)));
/// assert_eq!(leases.purge_expired(SimTime(10)), 1);
/// assert!(leases.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LeaseTable {
    leases: HashMap<(Key, Key), Lease>,
}

impl LeaseTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants (or renews) `holder`'s lease on `subject`'s state.
    pub fn grant(&mut self, holder: Key, subject: Key, now: SimTime, ttl: u64) {
        self.leases.insert((holder, subject), Lease::granted(now, ttl));
    }

    /// Whether `holder` currently holds a valid lease on `subject`.
    pub fn is_fresh(&self, holder: Key, subject: Key, now: SimTime) -> bool {
        self.leases.get(&(holder, subject)).is_some_and(|l| l.is_valid(now))
    }

    /// Revokes a single lease (e.g. the holder observed a delivery failure).
    pub fn revoke(&mut self, holder: Key, subject: Key) -> bool {
        self.leases.remove(&(holder, subject)).is_some()
    }

    /// Drops every lease on `subject` — used when the subject leaves.
    pub fn revoke_subject(&mut self, subject: Key) -> usize {
        let before = self.leases.len();
        self.leases.retain(|&(_, s), _| s != subject);
        before - self.leases.len()
    }

    /// Drops every lease held *by* `holder` — used when the holder is
    /// confirmed crashed, so its contracts cannot outlive it.
    pub fn revoke_holder(&mut self, holder: Key) -> usize {
        let before = self.leases.len();
        self.leases.retain(|&(h, _), _| h != holder);
        before - self.leases.len()
    }

    /// Drops every expired lease; returns how many were purged.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        self.purge_expired_pairs(now).len()
    }

    /// Drops every expired lease and returns the `(holder, subject)`
    /// pairs purged, sorted — callers that mirror revocations into
    /// per-holder durable stores need to know whose contract ended.
    pub fn purge_expired_pairs(&mut self, now: SimTime) -> Vec<(Key, Key)> {
        let mut purged = Vec::new();
        self.leases.retain(|&pair, l| {
            let keep = l.is_valid(now);
            if !keep {
                purged.push(pair);
            }
            keep
        });
        purged.sort_unstable();
        purged
    }

    /// The holders currently leasing `subject`'s state, sorted.
    pub fn holders_of_subject(&self, subject: Key) -> Vec<Key> {
        let mut holders: Vec<Key> =
            self.leases.keys().filter(|&&(_, s)| s == subject).map(|&(h, _)| h).collect();
        holders.sort_unstable();
        holders
    }

    /// Number of live lease contracts (valid or not yet purged).
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// Whether the table holds no contracts.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_lifecycle() {
        let l = Lease::granted(SimTime(10), 5);
        assert!(l.is_valid(SimTime(10)));
        assert!(l.is_valid(SimTime(14)));
        assert!(!l.is_valid(SimTime(15)), "expiry instant is invalid");
    }

    #[test]
    fn table_grant_and_expiry() {
        let mut t = LeaseTable::new();
        t.grant(Key(1), Key(2), SimTime(0), 10);
        assert!(t.is_fresh(Key(1), Key(2), SimTime(9)));
        assert!(!t.is_fresh(Key(1), Key(2), SimTime(10)));
        assert!(!t.is_fresh(Key(2), Key(1), SimTime(0)), "direction matters");
    }

    #[test]
    fn renewal_extends() {
        let mut t = LeaseTable::new();
        t.grant(Key(1), Key(2), SimTime(0), 10);
        t.grant(Key(1), Key(2), SimTime(8), 10);
        assert!(t.is_fresh(Key(1), Key(2), SimTime(15)));
    }

    #[test]
    fn revoke_and_revoke_subject() {
        let mut t = LeaseTable::new();
        t.grant(Key(1), Key(9), SimTime(0), 10);
        t.grant(Key(2), Key(9), SimTime(0), 10);
        t.grant(Key(1), Key(3), SimTime(0), 10);
        assert!(t.revoke(Key(1), Key(9)));
        assert!(!t.revoke(Key(1), Key(9)), "already gone");
        assert_eq!(t.revoke_subject(Key(9)), 1);
        assert_eq!(t.len(), 1);
        assert!(t.is_fresh(Key(1), Key(3), SimTime(5)));
    }

    #[test]
    fn revoke_holder_drops_only_the_holders_contracts() {
        let mut t = LeaseTable::new();
        t.grant(Key(1), Key(9), SimTime(0), 10);
        t.grant(Key(1), Key(3), SimTime(0), 10);
        t.grant(Key(2), Key(1), SimTime(0), 10);
        assert_eq!(t.revoke_holder(Key(1)), 2);
        assert_eq!(t.len(), 1);
        assert!(t.is_fresh(Key(2), Key(1), SimTime(5)), "leases *on* 1 survive");
    }

    /// Pins `Lease::is_valid` and `LeaseTable::purge_expired` to the
    /// same semantics at the boundary instant `now == granted + ttl`:
    /// the lease must be invalid AND purged there. Off-by-one drift
    /// between the two would let a contract be simultaneously "fresh"
    /// (served from the table) and "purged" (dropped by upkeep).
    #[test]
    fn expiry_boundary_agrees_between_is_valid_and_purge() {
        let granted = SimTime(100);
        let ttl = 20;
        let boundary = granted.plus(ttl);
        let just_before = SimTime(boundary.0 - 1);

        let l = Lease::granted(granted, ttl);
        assert!(l.is_valid(just_before));
        assert!(!l.is_valid(boundary), "invalid exactly at granted + ttl");

        let mut t = LeaseTable::new();
        t.grant(Key(1), Key(2), granted, ttl);
        assert_eq!(t.purge_expired(just_before), 0, "valid leases are not purged");
        assert!(t.is_fresh(Key(1), Key(2), just_before));
        assert!(!t.is_fresh(Key(1), Key(2), boundary), "is_fresh agrees with is_valid");
        assert_eq!(t.purge_expired(boundary), 1, "purged exactly at granted + ttl");
        assert!(t.is_empty());
    }

    /// Pins the half-open `[granted, granted + ttl)` validity window at
    /// ttl-1 / ttl / ttl+1 — the same convention
    /// `LocationRecord::is_expired` is pinned to in `location.rs`.
    #[test]
    fn ttl_boundary_three_points() {
        let granted = SimTime(100);
        let ttl = 20;
        let l = Lease::granted(granted, ttl);
        assert!(l.is_valid(granted), "valid at grant");
        assert!(l.is_valid(granted.plus(ttl - 1)), "valid at ttl-1");
        assert!(!l.is_valid(granted.plus(ttl)), "invalid exactly at ttl");
        assert!(!l.is_valid(granted.plus(ttl + 1)), "stays invalid at ttl+1");
    }

    #[test]
    fn purge_expired_removes_only_stale() {
        let mut t = LeaseTable::new();
        t.grant(Key(1), Key(2), SimTime(0), 5);
        t.grant(Key(1), Key(3), SimTime(0), 50);
        assert_eq!(t.purge_expired(SimTime(10)), 1);
        assert_eq!(t.len(), 1);
        assert!(t.is_fresh(Key(1), Key(3), SimTime(10)));
    }
}
