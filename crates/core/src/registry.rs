//! Registration bookkeeping (paper §2.3.1, `register`).
//!
//! A node X that holds Y's state-pair registers its interest to Y, along
//! with its capacity `C_X`. Y therefore knows the set R(Y) of registrants
//! it must inform when it moves — the membership of Y's LDT. With the
//! HS-P2P replicating a node's state to O(log N) peers, |R(Y)| = O(log N).

use std::collections::HashMap;

use bristle_overlay::key::Key;

/// One registered interested party: who, and how able.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registrant {
    /// The registrant's hash key.
    pub key: Key,
    /// The capacity `C_X` it reported when registering.
    pub capacity: u32,
}

impl Registrant {
    /// Convenience constructor.
    pub fn new(key: Key, capacity: u32) -> Registrant {
        Registrant { key, capacity }
    }
}

/// The system-wide registration state: for each target node, who has
/// registered interest in its movement.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    interests: HashMap<Key, Vec<Registrant>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `who` to `target` (idempotent; re-registration updates
    /// the reported capacity). Returns `true` if this was a new interest.
    pub fn register(&mut self, who: Registrant, target: Key) -> bool {
        let list = self.interests.entry(target).or_default();
        match list.iter_mut().find(|r| r.key == who.key) {
            Some(existing) => {
                existing.capacity = who.capacity;
                false
            }
            None => {
                list.push(who);
                true
            }
        }
    }

    /// Removes `who`'s interest in `target`.
    pub fn deregister(&mut self, who: Key, target: Key) -> bool {
        let Some(list) = self.interests.get_mut(&target) else {
            return false;
        };
        let before = list.len();
        list.retain(|r| r.key != who);
        let removed = list.len() < before;
        if list.is_empty() {
            self.interests.remove(&target);
        }
        removed
    }

    /// Removes `who` from every target's registrant list (the node left).
    pub fn remove_everywhere(&mut self, who: Key) -> usize {
        let mut removed = 0;
        self.interests.retain(|_, list| {
            let before = list.len();
            list.retain(|r| r.key != who);
            removed += before - list.len();
            !list.is_empty()
        });
        removed
    }

    /// Drops all interests *in* `target` (the target left).
    pub fn drop_target(&mut self, target: Key) -> usize {
        self.interests.remove(&target).map(|l| l.len()).unwrap_or(0)
    }

    /// The registrants R(target), in registration order.
    pub fn registrants_of(&self, target: Key) -> &[Registrant] {
        self.interests.get(&target).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of targets with at least one registrant.
    pub fn target_count(&self) -> usize {
        self.interests.len()
    }

    /// Total registrations across all targets.
    pub fn total_registrations(&self) -> usize {
        self.interests.values().map(Vec::len).sum()
    }

    /// Iterates `(target, registrants)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &[Registrant])> + '_ {
        self.interests.iter().map(|(&k, v)| (k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_but_updates_capacity() {
        let mut reg = Registry::new();
        assert!(reg.register(Registrant::new(Key(1), 5), Key(9)));
        assert!(!reg.register(Registrant::new(Key(1), 8), Key(9)));
        let r = reg.registrants_of(Key(9));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].capacity, 8);
        assert_eq!(reg.total_registrations(), 1);
    }

    #[test]
    fn deregister_removes_interest() {
        let mut reg = Registry::new();
        reg.register(Registrant::new(Key(1), 5), Key(9));
        reg.register(Registrant::new(Key(2), 5), Key(9));
        assert!(reg.deregister(Key(1), Key(9)));
        assert_eq!(reg.registrants_of(Key(9)).len(), 1);
        assert!(!reg.deregister(Key(1), Key(9)));
        assert!(reg.deregister(Key(2), Key(9)));
        assert_eq!(reg.target_count(), 0);
    }

    #[test]
    fn remove_everywhere_sweeps_all_targets() {
        let mut reg = Registry::new();
        reg.register(Registrant::new(Key(1), 5), Key(9));
        reg.register(Registrant::new(Key(1), 5), Key(10));
        reg.register(Registrant::new(Key(2), 5), Key(10));
        assert_eq!(reg.remove_everywhere(Key(1)), 2);
        assert_eq!(reg.registrants_of(Key(9)).len(), 0);
        assert_eq!(reg.registrants_of(Key(10)).len(), 1);
    }

    #[test]
    fn drop_target_clears_interest_list() {
        let mut reg = Registry::new();
        reg.register(Registrant::new(Key(1), 5), Key(9));
        reg.register(Registrant::new(Key(2), 6), Key(9));
        assert_eq!(reg.drop_target(Key(9)), 2);
        assert_eq!(reg.drop_target(Key(9)), 0);
        assert!(reg.registrants_of(Key(9)).is_empty());
    }

    #[test]
    fn unknown_target_has_no_registrants() {
        let reg = Registry::new();
        assert!(reg.registrants_of(Key(404)).is_empty());
        assert_eq!(reg.target_count(), 0);
    }
}
