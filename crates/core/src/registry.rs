//! Registration bookkeeping (paper §2.3.1, `register`).
//!
//! A node X that holds Y's state-pair registers its interest to Y, along
//! with its capacity `C_X`. Y therefore knows the set R(Y) of registrants
//! it must inform when it moves — the membership of Y's LDT. With the
//! HS-P2P replicating a node's state to O(log N) peers, |R(Y)| = O(log N).

use bristle_overlay::key::Key;

use crate::arena::KeyInterner;

/// One registered interested party: who, and how able.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registrant {
    /// The registrant's hash key.
    pub key: Key,
    /// The capacity `C_X` it reported when registering.
    pub capacity: u32,
}

impl Registrant {
    /// Convenience constructor.
    pub fn new(key: Key, capacity: u32) -> Registrant {
        Registrant { key, capacity }
    }
}

/// The system-wide registration state: for each target node, who has
/// registered interest in its movement.
///
/// Internally targets are interned to dense indices and registrant
/// lists live in a flat `Vec` — the per-target lookup on the LDT hot
/// path is one hash (the interner boundary) plus an array index. The
/// public API stays `Key`-based.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    targets: KeyInterner,
    lists: Vec<Vec<Registrant>>,
    nonempty: usize,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `who` to `target` (idempotent; re-registration updates
    /// the reported capacity). Returns `true` if this was a new interest.
    pub fn register(&mut self, who: Registrant, target: Key) -> bool {
        let idx = self.targets.intern(target).index();
        if idx >= self.lists.len() {
            self.lists.resize_with(idx + 1, Vec::new);
        }
        let list = &mut self.lists[idx];
        match list.iter_mut().find(|r| r.key == who.key) {
            Some(existing) => {
                existing.capacity = who.capacity;
                false
            }
            None => {
                if list.is_empty() {
                    self.nonempty += 1;
                }
                list.push(who);
                true
            }
        }
    }

    /// Removes `who`'s interest in `target`.
    pub fn deregister(&mut self, who: Key, target: Key) -> bool {
        let Some(list) = self.targets.get(target).and_then(|i| self.lists.get_mut(i.index()))
        else {
            return false;
        };
        let before = list.len();
        list.retain(|r| r.key != who);
        let removed = list.len() < before;
        if removed && list.is_empty() {
            self.nonempty -= 1;
        }
        removed
    }

    /// Removes `who` from every target's registrant list (the node left).
    pub fn remove_everywhere(&mut self, who: Key) -> usize {
        let mut removed = 0;
        for list in &mut self.lists {
            let before = list.len();
            list.retain(|r| r.key != who);
            removed += before - list.len();
            if before > 0 && list.is_empty() {
                self.nonempty -= 1;
            }
        }
        removed
    }

    /// Drops all interests *in* `target` (the target left).
    pub fn drop_target(&mut self, target: Key) -> usize {
        let Some(list) = self.targets.get(target).and_then(|i| self.lists.get_mut(i.index()))
        else {
            return 0;
        };
        let dropped = list.len();
        if dropped > 0 {
            self.nonempty -= 1;
        }
        list.clear();
        dropped
    }

    /// The registrants R(target), in registration order.
    pub fn registrants_of(&self, target: Key) -> &[Registrant] {
        self.targets
            .get(target)
            .and_then(|i| self.lists.get(i.index()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of targets with at least one registrant.
    pub fn target_count(&self) -> usize {
        self.nonempty
    }

    /// Total registrations across all targets.
    pub fn total_registrations(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Iterates `(target, registrants)` pairs with at least one
    /// registrant, in target-intern (first-registration) order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &[Registrant])> + '_ {
        self.lists
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(i, l)| (self.targets.key_of(crate::arena::NodeIdx(i as u32)), l.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_but_updates_capacity() {
        let mut reg = Registry::new();
        assert!(reg.register(Registrant::new(Key(1), 5), Key(9)));
        assert!(!reg.register(Registrant::new(Key(1), 8), Key(9)));
        let r = reg.registrants_of(Key(9));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].capacity, 8);
        assert_eq!(reg.total_registrations(), 1);
    }

    #[test]
    fn deregister_removes_interest() {
        let mut reg = Registry::new();
        reg.register(Registrant::new(Key(1), 5), Key(9));
        reg.register(Registrant::new(Key(2), 5), Key(9));
        assert!(reg.deregister(Key(1), Key(9)));
        assert_eq!(reg.registrants_of(Key(9)).len(), 1);
        assert!(!reg.deregister(Key(1), Key(9)));
        assert!(reg.deregister(Key(2), Key(9)));
        assert_eq!(reg.target_count(), 0);
    }

    #[test]
    fn remove_everywhere_sweeps_all_targets() {
        let mut reg = Registry::new();
        reg.register(Registrant::new(Key(1), 5), Key(9));
        reg.register(Registrant::new(Key(1), 5), Key(10));
        reg.register(Registrant::new(Key(2), 5), Key(10));
        assert_eq!(reg.remove_everywhere(Key(1)), 2);
        assert_eq!(reg.registrants_of(Key(9)).len(), 0);
        assert_eq!(reg.registrants_of(Key(10)).len(), 1);
    }

    #[test]
    fn drop_target_clears_interest_list() {
        let mut reg = Registry::new();
        reg.register(Registrant::new(Key(1), 5), Key(9));
        reg.register(Registrant::new(Key(2), 6), Key(9));
        assert_eq!(reg.drop_target(Key(9)), 2);
        assert_eq!(reg.drop_target(Key(9)), 0);
        assert!(reg.registrants_of(Key(9)).is_empty());
    }

    #[test]
    fn unknown_target_has_no_registrants() {
        let reg = Registry::new();
        assert!(reg.registrants_of(Key(404)).is_empty());
        assert_eq!(reg.target_count(), 0);
    }
}
