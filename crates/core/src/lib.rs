//! # bristle-core
//!
//! A Rust implementation of **Bristle**, the mobile structured
//! peer-to-peer architecture of Hsiao & King (IPDPS 2003).
//!
//! Bristle lets nodes of a hash-structured P2P overlay change their
//! network attachment points *without* losing their overlay identity or
//! the data they own. It does so with:
//!
//! * **two layers** — a stationary-layer HS-P2P acting as a location
//!   repository, and a mobile-layer HS-P2P carrying application traffic
//!   ([`system::BristleSystem`]);
//! * **routing with address resolution** — stale next-hop addresses are
//!   resolved through the stationary layer mid-route
//!   ([`mobile`], paper Fig. 2);
//! * **location dissemination trees** — capacity-aware multicast trees
//!   pushing a mover's new address to all registered interested nodes in
//!   O(log log N) hops ([`advertise`], [`ldt`], paper Fig. 4);
//! * **leases** with early/late binding ([`lease`], §2.3.2);
//! * **crash healing** — confirming a node dead prunes its traces,
//!   re-grafts orphaned LDT subtrees, and reconciles replicated location
//!   records ([`heal`]);
//! * **partition tolerance** — wrongful death verdicts are refuted with
//!   SWIM-style incarnation numbers and reversed by a rejoin that
//!   restores registrations, LDT membership and withdrawn location
//!   records ([`rejoin`]);
//! * **clustered naming** — keeping stationary-to-stationary routes
//!   inside the stationary key band, reducing route cost from O(log² N)
//!   to O(log N) ([`naming`], §3);
//! * **durable state** — every repository mutation is mirrored into a
//!   per-node pluggable store; with a write-ahead-log backend a crashed
//!   node restarts from disk with its shard intact instead of
//!   re-learning it from the overlay ([`durable`], [`restart`]).
//!
//! ## Quick start
//!
//! ```
//! use bristle_core::prelude::*;
//!
//! // 40 stationary + 10 mobile nodes on a small transit-stub topology.
//! let mut sys = BristleBuilder::new(7).stationary_nodes(40).mobile_nodes(10).build().unwrap();
//! let mobile = sys.mobile_keys()[0];
//! let source = sys.stationary_keys()[0];
//!
//! // The mobile node roams; Bristle republishes and disseminates.
//! let report = sys.move_node(mobile, None).unwrap();
//! assert!(report.updates_sent > 0 || report.ldt.is_empty());
//!
//! // Routing to it still works: stale hops resolve through the
//! // stationary layer transparently.
//! let route = sys.route_mobile(source, mobile).unwrap();
//! assert_eq!(route.terminus, sys.mobile.owner(mobile).unwrap());
//! ```

#![warn(missing_docs)]

pub mod advertise;
pub mod analysis;
pub mod arena;
pub mod auth;
pub mod config;
pub mod durable;
pub mod error;
pub mod heal;
pub mod join;
pub mod ldt;
pub mod ldt_nonmember;
pub mod lease;
pub mod location;
pub mod mobile;
pub mod naming;
pub mod registry;
pub mod rejoin;
pub mod restart;
pub mod stats;
pub mod system;
pub mod time;
pub mod upkeep;

pub use advertise::{plan_advertisement, AdvertiseStep, DEFAULT_UNIT_COST};
pub use arena::{KeyInterner, NodeArena, NodeIdx};
pub use auth::{AuthDomain, AuthError, VerifyPolicy, WireAuth};
pub use config::{BindingMode, BristleConfig, NamingPolicy};
pub use durable::StoreHub;
pub use error::{BristleError, Result};
pub use heal::DeathReport;
pub use join::JoinReport;
pub use ldt::{Ldt, LdtHeal, LdtNode};
pub use ldt_nonmember::NonMemberTree;
pub use lease::{Lease, LeaseTable};
pub use location::LocationRecord;
pub use mobile::{DiscoveryReport, MobileRouteReport};
pub use naming::{Mobility, NamingScheme};
pub use registry::{Registrant, Registry};
pub use rejoin::RejoinReport;
pub use restart::RestartReport;
pub use stats::SystemStats;
pub use system::{BristleBuilder, BristleSystem, MoveReport, NodeInfo};
pub use time::{Clock, SimTime};
pub use upkeep::UpkeepReport;

/// Everything most users need, re-exported flat.
pub mod prelude {
    pub use crate::config::{BindingMode, BristleConfig, NamingPolicy};
    pub use crate::error::{BristleError, Result};
    pub use crate::naming::{Mobility, NamingScheme};
    pub use crate::system::{BristleBuilder, BristleSystem, MoveReport};
    pub use bristle_overlay::key::Key;
    pub use bristle_overlay::meter::{MessageKind, Meter};
}
