//! The capacity-aware state-advertisement algorithm (paper Figure 4).
//!
//! When a mobile node `i` needs to push its new network address to its
//! registrants R(i), it does not contact them all itself. Instead:
//!
//! 1. Sort R(i) in decreasing capacity order.
//! 2. If `i` is overloaded (`Avail_i − v ≤ 0`): send one message to the
//!    highest-capacity registrant, handing it the *entire* remaining list —
//!    that registrant then "behaves as node i" and advertises onward.
//! 3. Otherwise partition the list into `k = ⌊Avail_i / v⌋` near-equal
//!    sublists by dealing the sorted list round-robin, and send `i`'s
//!    address to the head (= highest-capacity member) of each sublist
//!    together with the rest of that sublist.
//!
//! Applied recursively this builds the location dissemination tree (LDT):
//! heavily loaded nodes produce deep chains, capable nodes produce wide,
//! shallow trees — exactly the adaptation the paper measures in Fig. 8.

use crate::registry::Registrant;

/// Default unit cost `v` of sending one update message.
pub const DEFAULT_UNIT_COST: u32 = 1;

/// One outgoing advertisement: the recipient and the sublist of
/// registrants it becomes responsible for informing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvertiseStep {
    /// The registrant that receives the update directly.
    pub head: Registrant,
    /// Registrants delegated to `head` (it must inform them next).
    pub delegated: Vec<Registrant>,
}

impl AdvertiseStep {
    /// Size of the partition this step covers (head + delegated) —
    /// Fig. 8(b)'s "number of nodes assigned".
    pub fn partition_size(&self) -> usize {
        1 + self.delegated.len()
    }
}

/// Sorts registrants the way Fig. 4's `sort` does: decreasing capacity,
/// ties broken by key for determinism.
pub fn sort_by_capacity(registrants: &mut [Registrant]) {
    registrants.sort_by(|a, b| b.capacity.cmp(&a.capacity).then(a.key.cmp(&b.key)));
}

/// Plans one invocation of `_advertise(node i)` (paper Fig. 4).
///
/// `avail` is `Avail_i = C_i − Used_i`; `unit_cost` is `v`. Returns the
/// set of direct sends; the union of `{head} ∪ delegated` over all steps
/// is exactly the input list.
///
/// # Examples
///
/// ```
/// use bristle_core::advertise::plan_advertisement;
/// use bristle_core::registry::Registrant;
/// use bristle_overlay::key::Key;
///
/// let registrants: Vec<Registrant> =
///     (1..=6).map(|i| Registrant::new(Key(i), i as u32)).collect();
///
/// // Available capacity 3, unit cost 1 → three near-equal partitions,
/// // each headed by one of the three most capable registrants.
/// let steps = plan_advertisement(&registrants, 3, 1);
/// assert_eq!(steps.len(), 3);
/// assert!(steps.iter().all(|s| s.partition_size() == 2));
/// assert!(steps.iter().all(|s| s.head.capacity >= 4));
///
/// // Overloaded (avail ≤ v): everything is delegated to the strongest.
/// let steps = plan_advertisement(&registrants, 1, 1);
/// assert_eq!(steps.len(), 1);
/// assert_eq!(steps[0].head.capacity, 6);
/// ```
pub fn plan_advertisement(
    registrants: &[Registrant],
    avail: u32,
    unit_cost: u32,
) -> Vec<AdvertiseStep> {
    assert!(unit_cost >= 1, "unit cost v must be positive");
    if registrants.is_empty() {
        return Vec::new();
    }
    let mut list = registrants.to_vec();
    sort_by_capacity(&mut list);

    // Overloaded: Avail_i − v ≤ 0 — a single send to the most capable
    // registrant, which inherits the whole remaining list.
    if avail <= unit_cost {
        let head = list[0];
        let delegated = list[1..].to_vec();
        return vec![AdvertiseStep { head, delegated }];
    }

    // k = ⌊Avail_i / v⌋ partitions, dealt round-robin from the sorted list
    // so sizes are near-equal and capacity spreads across partitions.
    let k = ((avail / unit_cost) as usize).min(list.len());
    let mut partitions: Vec<Vec<Registrant>> = vec![Vec::new(); k];
    for (idx, r) in list.into_iter().enumerate() {
        partitions[idx % k].push(r);
    }
    partitions
        .into_iter()
        .map(|mut p| {
            let head = p.remove(0);
            AdvertiseStep { head, delegated: p }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bristle_overlay::key::Key;

    fn regs(caps: &[u32]) -> Vec<Registrant> {
        caps.iter().enumerate().map(|(i, &c)| Registrant::new(Key(i as u64), c)).collect()
    }

    /// Flattens steps back to the full covered set.
    fn covered(steps: &[AdvertiseStep]) -> Vec<Registrant> {
        let mut out = Vec::new();
        for s in steps {
            out.push(s.head);
            out.extend(s.delegated.iter().copied());
        }
        out
    }

    #[test]
    fn empty_registrants_plan_nothing() {
        assert!(plan_advertisement(&[], 10, 1).is_empty());
    }

    #[test]
    fn overloaded_node_sends_once_to_strongest() {
        let steps = plan_advertisement(&regs(&[3, 9, 1, 5]), 1, 1);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].head.capacity, 9);
        assert_eq!(steps[0].delegated.len(), 3);
        // Delegated list stays capacity-sorted.
        let caps: Vec<u32> = steps[0].delegated.iter().map(|r| r.capacity).collect();
        assert_eq!(caps, vec![5, 3, 1]);
    }

    #[test]
    fn zero_avail_also_overloaded() {
        let steps = plan_advertisement(&regs(&[2, 4]), 0, 1);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].head.capacity, 4);
    }

    #[test]
    fn capable_node_fans_out_k_ways() {
        // avail 4, v 1 → k = 4 partitions over 8 registrants → sizes 2,2,2,2.
        let steps = plan_advertisement(&regs(&[1, 2, 3, 4, 5, 6, 7, 8]), 4, 1);
        assert_eq!(steps.len(), 4);
        for s in &steps {
            assert_eq!(s.partition_size(), 2);
        }
        // Heads are exactly the top-k capacities.
        let mut heads: Vec<u32> = steps.iter().map(|s| s.head.capacity).collect();
        heads.sort_unstable();
        assert_eq!(heads, vec![5, 6, 7, 8]);
    }

    #[test]
    fn partition_sizes_differ_by_at_most_one() {
        for (n, avail) in [(10, 3), (11, 3), (7, 5), (20, 6), (15, 2)] {
            let caps: Vec<u32> = (1..=n as u32).collect();
            let steps = plan_advertisement(&regs(&caps), avail, 1);
            let sizes: Vec<usize> = steps.iter().map(AdvertiseStep::partition_size).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "n={n} avail={avail} sizes {sizes:?}");
        }
    }

    #[test]
    fn partitions_cover_input_exactly_once() {
        let input = regs(&[5, 5, 9, 1, 7, 3, 3, 8]);
        let steps = plan_advertisement(&input, 3, 1);
        let mut got: Vec<Key> = covered(&steps).iter().map(|r| r.key).collect();
        got.sort_unstable();
        let mut want: Vec<Key> = input.iter().map(|r| r.key).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn k_capped_by_list_length() {
        // avail 100 over 3 registrants → 3 singleton partitions, not 100.
        let steps = plan_advertisement(&regs(&[1, 2, 3]), 100, 1);
        assert_eq!(steps.len(), 3);
        assert!(steps.iter().all(|s| s.delegated.is_empty()));
    }

    #[test]
    fn unit_cost_scales_fanout() {
        // avail 6, v 3 → k = 2.
        let steps = plan_advertisement(&regs(&[1, 2, 3, 4]), 6, 3);
        assert_eq!(steps.len(), 2);
        // avail 6, v 6 → Avail − v ≤ 0 boundary: k = 1 via overload branch.
        let steps = plan_advertisement(&regs(&[1, 2, 3, 4]), 6, 6);
        assert_eq!(steps.len(), 1);
    }

    #[test]
    fn deterministic_under_capacity_ties() {
        let a = plan_advertisement(&regs(&[5, 5, 5, 5]), 2, 1);
        let b = plan_advertisement(&regs(&[5, 5, 5, 5]), 2, 1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "unit cost")]
    fn zero_unit_cost_rejected() {
        plan_advertisement(&regs(&[1]), 1, 0);
    }
}
