//! Dense node indices and flat per-node arenas.
//!
//! Every `HashMap<Key, _>` lookup on a per-node hot path pays a hash and
//! a probe; at 10⁵–10⁶ nodes those misses dominate the simulation's
//! profile. This module provides the scale engine's alternative: a
//! [`KeyInterner`] assigns each key a dense [`NodeIdx`] once, and hot
//! state lives in [`NodeArena`]s — flat `Vec`s indexed by that id. The
//! interner's hash map is the *only* hash on the path (the API
//! boundary); everything behind it is an array index.
//!
//! Indices are append-only: a node that leaves or dies keeps its
//! [`NodeIdx`] forever (its arena slots are vacated, the id is never
//! reused). That makes indices stable across churn — a driver can hold
//! an index through a funeral and a rejoin — and keeps shard
//! assignments deterministic under the parallel tick paths.

use std::collections::HashMap;

use bristle_overlay::key::Key;

/// A dense, stable per-node index (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    /// The index as a `usize`, for slicing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Key ⇄ dense-index bijection. Interning is idempotent; indices are
/// never reused or reordered.
#[derive(Debug, Clone, Default)]
pub struct KeyInterner {
    idx_of: HashMap<Key, NodeIdx>,
    keys: Vec<Key>,
}

impl KeyInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The index for `key`, assigning the next dense id on first sight.
    pub fn intern(&mut self, key: Key) -> NodeIdx {
        if let Some(&idx) = self.idx_of.get(&key) {
            return idx;
        }
        let idx = NodeIdx(u32::try_from(self.keys.len()).expect("more than u32::MAX nodes"));
        self.idx_of.insert(key, idx);
        self.keys.push(key);
        idx
    }

    /// The index for `key`, if it was ever interned.
    #[inline]
    pub fn get(&self, key: Key) -> Option<NodeIdx> {
        self.idx_of.get(&key).copied()
    }

    /// The key owning `idx`.
    ///
    /// # Panics
    /// Panics if `idx` was never assigned by this interner.
    #[inline]
    pub fn key_of(&self, idx: NodeIdx) -> Key {
        self.keys[idx.index()]
    }

    /// Number of distinct keys ever interned (== the next fresh index).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// A flat arena of per-node state indexed by [`NodeIdx`]: a `Vec` of
/// slots plus an occupancy count. Absent nodes cost one `None`.
#[derive(Debug, Clone)]
pub struct NodeArena<T> {
    slots: Vec<Option<T>>,
    occupied: usize,
}

impl<T> Default for NodeArena<T> {
    fn default() -> Self {
        NodeArena { slots: Vec::new(), occupied: 0 }
    }
}

impl<T> NodeArena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    fn grow_to(&mut self, idx: NodeIdx) {
        if idx.index() >= self.slots.len() {
            self.slots.resize_with(idx.index() + 1, || None);
        }
    }

    /// Installs `value` at `idx`, returning the previous occupant.
    pub fn insert(&mut self, idx: NodeIdx, value: T) -> Option<T> {
        self.grow_to(idx);
        let old = self.slots[idx.index()].replace(value);
        if old.is_none() {
            self.occupied += 1;
        }
        old
    }

    /// Vacates the slot at `idx`, returning its occupant.
    pub fn remove(&mut self, idx: NodeIdx) -> Option<T> {
        let old = self.slots.get_mut(idx.index()).and_then(Option::take);
        if old.is_some() {
            self.occupied -= 1;
        }
        old
    }

    /// The occupant of `idx`, if any.
    #[inline]
    pub fn get(&self, idx: NodeIdx) -> Option<&T> {
        self.slots.get(idx.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the occupant of `idx`, if any.
    #[inline]
    pub fn get_mut(&mut self, idx: NodeIdx) -> Option<&mut T> {
        self.slots.get_mut(idx.index()).and_then(Option::as_mut)
    }

    /// Whether the slot at `idx` is occupied.
    #[inline]
    pub fn contains(&self, idx: NodeIdx) -> bool {
        self.get(idx).is_some()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Iterates occupied slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeIdx, &T)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (NodeIdx(i as u32), v)))
    }

    /// Iterates occupied slots mutably, in index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NodeIdx, &mut T)> + '_ {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (NodeIdx(i as u32), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_idempotent_and_dense() {
        let mut int = KeyInterner::new();
        let a = int.intern(Key(100));
        let b = int.intern(Key(200));
        assert_eq!(int.intern(Key(100)), a, "re-interning returns the same id");
        assert_eq!((a, b), (NodeIdx(0), NodeIdx(1)), "ids are dense in intern order");
        assert_eq!(int.key_of(a), Key(100));
        assert_eq!(int.key_of(b), Key(200));
        assert_eq!(int.get(Key(300)), None);
        assert_eq!(int.len(), 2);
    }

    #[test]
    fn arena_insert_get_remove() {
        let mut arena: NodeArena<&str> = NodeArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.insert(NodeIdx(3), "c"), None);
        assert_eq!(arena.insert(NodeIdx(0), "a"), None);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(NodeIdx(3)), Some(&"c"));
        assert_eq!(arena.get(NodeIdx(1)), None, "gap slots read as absent");
        assert_eq!(arena.get(NodeIdx(99)), None, "past the end reads as absent");
        assert_eq!(arena.insert(NodeIdx(3), "C"), Some("c"), "re-insert replaces");
        assert_eq!(arena.len(), 2, "replacement does not change occupancy");
        assert_eq!(arena.remove(NodeIdx(3)), Some("C"));
        assert_eq!(arena.remove(NodeIdx(3)), None, "double-remove is a no-op");
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn arena_iterates_in_index_order() {
        let mut arena: NodeArena<u32> = NodeArena::new();
        for i in [4u32, 1, 9, 2] {
            arena.insert(NodeIdx(i), i * 10);
        }
        arena.remove(NodeIdx(9));
        let seen: Vec<(NodeIdx, u32)> = arena.iter().map(|(i, &v)| (i, v)).collect();
        assert_eq!(seen, vec![(NodeIdx(1), 10), (NodeIdx(2), 20), (NodeIdx(4), 40)]);
        for (_, v) in arena.iter_mut() {
            *v += 1;
        }
        assert_eq!(arena.get(NodeIdx(1)), Some(&11));
    }

    #[test]
    fn departed_indices_stay_stable() {
        let mut int = KeyInterner::new();
        let mut arena: NodeArena<u8> = NodeArena::new();
        let a = int.intern(Key(7));
        arena.insert(a, 1);
        arena.remove(a); // the node leaves...
        let again = int.intern(Key(7)); // ...and later rejoins
        assert_eq!(again, a, "the id survives departure");
        arena.insert(again, 2);
        assert_eq!(arena.get(a), Some(&2));
    }
}
