//! The Bristle system: both layers, the physical network, and all
//! location-management state behind one facade.
//!
//! A [`BristleSystem`] owns
//!
//! * the physical substrate (transit-stub topology, attachment map,
//!   distance oracle),
//! * the **stationary layer** — an HS-P2P over the stationary nodes that
//!   stores [`LocationRecord`]s,
//! * the **mobile layer** — an HS-P2P over *all* nodes carrying
//!   application traffic (its cached `<key, addr>` state-pairs can go
//!   stale when nodes move),
//! * the registration state R(·), the lease table, the virtual clock and
//!   the message meter.
//!
//! Protocol operations live in three impl blocks: construction and
//! location management here, Figure-2 routing and `_discovery` in
//! [`crate::mobile`], and the join/leave protocol in [`crate::join`].

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bristle_netsim::attach::{AttachmentMap, HostId};
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::graph::RouterId;
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
use bristle_overlay::key::Key;
use bristle_overlay::meter::{MessageKind, Meter};
use bristle_overlay::ring::RingDht;

use crate::arena::{KeyInterner, NodeArena, NodeIdx};
use crate::config::{BristleConfig, NamingPolicy};
use crate::durable::{self, StoreHub, WalRecord};
use crate::error::{BristleError, Result};
use crate::ldt::Ldt;
use crate::lease::LeaseTable;
use crate::location::LocationRecord;
use crate::naming::{Mobility, NamingScheme};
use crate::registry::{Registrant, Registry};
use crate::time::{Clock, SimTime};

/// Static facts about one Bristle node.
#[derive(Debug, Clone, Copy)]
pub struct NodeInfo {
    /// The physical host embodying the node.
    pub host: HostId,
    /// Stationary or mobile.
    pub mobility: Mobility,
    /// Advertised capacity.
    pub capacity: u32,
    /// SWIM-style incarnation number. Only the node itself bumps it, and
    /// only on learning it was wrongfully suspected or declared dead; it
    /// dominates `seq` when location records conflict after a partition.
    pub incarnation: u64,
    /// Location-publication sequence number (mobile nodes).
    pub seq: u64,
}

/// What a [`BristleSystem::move_node`] did.
#[derive(Debug, Clone)]
pub struct MoveReport {
    /// Where the node is now attached.
    pub new_router: RouterId,
    /// Hops spent publishing the new location to the stationary layer.
    pub publish_hops: usize,
    /// The LDT the update was disseminated through.
    pub ldt: Ldt,
    /// Update messages sent along LDT edges.
    pub updates_sent: usize,
    /// Physical cost of those update messages.
    pub update_cost: u64,
}

/// The assembled Bristle system.
pub struct BristleSystem {
    cfg: BristleConfig,
    naming: NamingScheme,
    /// Virtual clock; leases and record TTLs run on it.
    pub clock: Clock,
    /// System-wide message accounting.
    pub meter: Meter,
    rng: Pcg64,
    /// Host attachments (the physical face of mobility).
    pub attachments: AttachmentMap,
    dcache: Arc<DistanceCache>,
    stub_routers: Vec<RouterId>,
    /// The stationary layer: location-information repository.
    pub stationary: RingDht<LocationRecord>,
    /// The mobile layer: the application HS-P2P over all nodes.
    pub mobile: RingDht<Vec<u8>>,
    /// Key → dense-index bijection. Append-only: buried and departed
    /// nodes keep their [`NodeIdx`] so indices stay stable across churn.
    interner: KeyInterner,
    /// Per-node hot state, flat-indexed by [`NodeIdx`]. Live nodes only;
    /// a vacant slot means the node left or died.
    info: NodeArena<NodeInfo>,
    stationary_keys: Vec<Key>,
    mobile_keys: Vec<Key>,
    /// Registration state R(·) (§2.3.1).
    pub registry: Registry,
    /// Lease contracts on cached addresses (§2.3.2).
    pub leases: LeaseTable,
    /// Nodes confirmed crashed by the failure detector (see
    /// [`crate::heal`]); kept so repeated suspicion reports are no-ops.
    pub(crate) dead: HashSet<Key>,
    /// Corpse state for nodes in `dead`, kept so a wrongful funeral can
    /// be reversed by [`crate::rejoin`] without re-admitting from scratch.
    pub(crate) graveyard: HashMap<Key, NodeInfo>,
    /// Burial times for graveyard entries, so [`Self::tick`] can prune
    /// corpses older than [`BristleConfig::graveyard_retention`] and
    /// long-running churn does not grow the graveyard without bound.
    pub(crate) buried_at: HashMap<Key, SimTime>,
    /// Per-node durable-state stores: every repository mutation is
    /// mirrored here (see [`crate::durable`]). In-memory by default;
    /// attach a WAL backend to make a node crash-restartable.
    pub stores: StoreHub,
}

/// Builder for [`BristleSystem`].
#[derive(Debug, Clone)]
pub struct BristleBuilder {
    seed: u64,
    config: BristleConfig,
    topology: TransitStubConfig,
    n_stationary: usize,
    n_mobile: usize,
    distance_cache_rows: usize,
    workers: usize,
}

impl BristleBuilder {
    /// Starts a builder with the recommended configuration, a small
    /// topology, and 64 stationary / 0 mobile nodes.
    pub fn new(seed: u64) -> Self {
        BristleBuilder {
            seed,
            config: BristleConfig::recommended(),
            topology: TransitStubConfig::small(),
            n_stationary: 64,
            n_mobile: 0,
            distance_cache_rows: 4096,
            workers: 1,
        }
    }

    /// Sets the number of stationary nodes (must be ≥ 1).
    pub fn stationary_nodes(mut self, n: usize) -> Self {
        self.n_stationary = n;
        self
    }

    /// Sets the number of mobile nodes.
    pub fn mobile_nodes(mut self, n: usize) -> Self {
        self.n_mobile = n;
        self
    }

    /// Overrides the protocol configuration.
    pub fn config(mut self, cfg: BristleConfig) -> Self {
        self.config = cfg;
        self
    }

    /// Overrides the physical topology.
    pub fn topology(mut self, t: TransitStubConfig) -> Self {
        self.topology = t;
        self
    }

    /// Bounds the distance-oracle memory (rows of cached Dijkstra output).
    pub fn distance_cache_rows(mut self, rows: usize) -> Self {
        self.distance_cache_rows = rows;
        self
    }

    /// Shards the initial table wiring across this many threads
    /// (see [`BristleSystem::rewire_with_workers`]; results are
    /// bit-identical at any worker count).
    pub fn build_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builds the system: generates the topology, attaches hosts, assigns
    /// keys under the naming policy, wires both layers, populates the
    /// registry from reverse routing pointers, and publishes every mobile
    /// node's initial location.
    pub fn build(self) -> Result<BristleSystem> {
        self.config.validate();
        assert!(self.n_stationary >= 1, "need at least one stationary node");
        let mut rng = Pcg64::seed_from_u64(self.seed);
        let mut topo_rng = rng.split(1);
        let topo = TransitStubTopology::generate(&self.topology, &mut topo_rng);
        let stub_routers = topo.stub_routers().to_vec();
        let dcache =
            Arc::new(DistanceCache::new(Arc::new(topo.into_graph()), self.distance_cache_rows));

        let total = self.n_stationary + self.n_mobile;
        let naming = match self.config.naming {
            NamingPolicy::Scrambled => NamingScheme::Scrambled,
            NamingPolicy::Clustered => {
                NamingScheme::clustered(self.n_stationary as f64 / total as f64)
            }
        };
        let ring = self.config.ring.clone();

        let mut sys = BristleSystem {
            cfg: self.config,
            naming,
            clock: Clock::new(),
            meter: Meter::new(),
            rng: rng.split(2),
            attachments: AttachmentMap::new(),
            dcache,
            stub_routers,
            stationary: RingDht::new(ring.clone()),
            mobile: RingDht::new(ring),
            interner: KeyInterner::new(),
            info: NodeArena::new(),
            stationary_keys: Vec::new(),
            mobile_keys: Vec::new(),
            registry: Registry::new(),
            leases: LeaseTable::new(),
            dead: HashSet::new(),
            graveyard: HashMap::new(),
            buried_at: HashMap::new(),
            stores: StoreHub::new(),
        };

        for _ in 0..self.n_stationary {
            sys.admit(Mobility::Stationary)?;
        }
        for _ in 0..self.n_mobile {
            sys.admit(Mobility::Mobile)?;
        }
        sys.rewire_with_workers(self.workers);
        sys.sync_registrations();
        sys.publish_all_locations()?;
        Ok(sys)
    }
}

impl BristleSystem {
    // ------------------------------------------------------------------
    // Construction helpers (used by the builder and by `join_node`).
    // ------------------------------------------------------------------

    /// Draws a fresh, non-colliding key for the mobility class.
    pub(crate) fn new_key(&mut self, mobility: Mobility) -> Result<Key> {
        for _ in 0..1024 {
            let k = self.naming.assign(mobility, &mut self.rng);
            // Collides only with *live* nodes: a departed node's key may
            // be re-drawn (its interned index is simply reoccupied).
            if !self.contains_node(k) {
                return Ok(k);
            }
        }
        Err(BristleError::KeySpaceExhausted)
    }

    /// The dense index for `key`, interning it on first sight.
    #[inline]
    pub(crate) fn idx(&mut self, key: Key) -> NodeIdx {
        self.interner.intern(key)
    }

    /// The info slot for a key that must name a live node.
    ///
    /// # Panics
    /// Panics if `key` is unknown or not live — callers on hot paths use
    /// this where the old code indexed `info[&key]`.
    #[inline]
    pub(crate) fn info_unchecked(&self, key: Key) -> &NodeInfo {
        let idx = self.interner.get(key).expect("known node");
        self.info.get(idx).expect("live node")
    }

    /// Whether `key` names a live node.
    #[inline]
    pub fn contains_node(&self, key: Key) -> bool {
        self.interner.get(key).is_some_and(|i| self.info.contains(i))
    }

    /// Creates a node body (host + key + capacity) and inserts it into the
    /// appropriate layers *without* wiring routing tables.
    pub(crate) fn admit(&mut self, mobility: Mobility) -> Result<Key> {
        let key = self.new_key(mobility)?;
        let router = *self.rng.choose(&self.stub_routers);
        let host = self.attachments.attach_new(router);
        let (lo, hi) = self.cfg.capacity_range;
        let capacity = self.rng.range_inclusive(lo as u64, hi as u64) as u32;
        let idx = self.idx(key);
        self.info.insert(idx, NodeInfo { host, mobility, capacity, incarnation: 0, seq: 0 });
        self.stores.apply(key, WalRecord::Identity { key: key.0, incarnation: 0 });
        self.mobile.insert(key, host, capacity)?;
        match mobility {
            Mobility::Stationary => {
                self.stationary.insert(key, host, capacity)?;
                self.stationary_keys.push(key);
            }
            Mobility::Mobile => self.mobile_keys.push(key),
        }
        Ok(key)
    }

    /// Records corpse state so a wrongful funeral can later be reversed
    /// by [`crate::rejoin`].
    pub(crate) fn remember_corpse(&mut self, key: Key, info: NodeInfo) {
        self.buried_at.insert(key, self.clock.now());
        self.graveyard.insert(key, info);
    }

    /// Takes corpse state back out of the graveyard (rejoin path).
    pub(crate) fn take_corpse(&mut self, key: Key) -> Option<NodeInfo> {
        self.buried_at.remove(&key);
        self.graveyard.remove(&key)
    }

    /// How many corpses the graveyard currently retains. Bounded under
    /// perpetual churn by [`BristleConfig::graveyard_retention`].
    pub fn graveyard_len(&self) -> usize {
        self.graveyard.len()
    }

    /// Re-inserts a previously buried node from its corpse state — the
    /// structural reverse of [`BristleSystem::fail_node`]. The host is
    /// still attached (abrupt failure never detaches it), so only the
    /// membership structures are restored; the caller rebuilds wiring.
    pub(crate) fn readmit(&mut self, key: Key, info: NodeInfo) -> Result<()> {
        let idx = self.idx(key);
        self.info.insert(idx, info);
        self.stores.apply(key, WalRecord::Identity { key: key.0, incarnation: info.incarnation });
        self.mobile.insert(key, info.host, info.capacity)?;
        match info.mobility {
            Mobility::Stationary => {
                self.stationary.insert(key, info.host, info.capacity)?;
                self.stationary_keys.push(key);
            }
            Mobility::Mobile => self.mobile_keys.push(key),
        }
        Ok(())
    }

    /// Rebuilds every routing table in both layers (steady-state wiring).
    pub fn rewire(&mut self) {
        self.rewire_with_workers(1);
    }

    /// [`BristleSystem::rewire`] with the per-layer table builds sharded
    /// across `workers` scoped threads. Produces bit-identical tables to
    /// the sequential path at any worker count: the RNG split happens
    /// once up front exactly as in `rewire`, and
    /// [`RingDht::build_all_tables_parallel`] guarantees order-independent
    /// results (falling back to sequential for RNG-consuming selection
    /// policies).
    pub fn rewire_with_workers(&mut self, workers: usize) {
        let mut rng = self.rng.split(3);
        self.stationary.build_all_tables_parallel(
            &self.attachments,
            &self.dcache,
            &mut rng,
            workers,
        );
        self.mobile.build_all_tables_parallel(&self.attachments, &self.dcache, &mut rng, workers);
    }

    /// Rebuilds the registration state from the mobile layer's reverse
    /// routing pointers: every holder of a *mobile* node's state-pair
    /// registers to that node with its capacity (§2.3.1 — "X can register
    /// itself to those mobile nodes only").
    pub fn sync_registrations(&mut self) {
        // Capture each holder's edge set before the rebuild so the diff
        // can be mirrored into the holders' durable stores.
        let mut old_edges: HashMap<Key, Vec<Key>> = HashMap::new();
        for (target, regs) in self.registry.iter() {
            for r in regs {
                old_edges.entry(r.key).or_default().push(target);
            }
        }
        self.registry = Registry::new();
        let rev = self.mobile.reverse_index();
        for (&subject, holders) in rev.iter() {
            if !self.is_mobile(subject) {
                continue;
            }
            for &holder in holders {
                let cap = self.info_unchecked(holder).capacity;
                self.registry.register(Registrant::new(holder, cap), subject);
                self.meter.bump(MessageKind::Register, 1);
            }
        }
        let mut new_edges: HashMap<Key, Vec<(Key, u32)>> = HashMap::new();
        for (target, regs) in self.registry.iter() {
            for r in regs {
                new_edges.entry(r.key).or_default().push((target, r.capacity));
            }
        }
        for (holder, targets) in old_edges {
            for target in targets {
                let kept =
                    new_edges.get(&holder).is_some_and(|v| v.iter().any(|&(t, _)| t == target));
                if !kept {
                    self.stores.apply(holder, WalRecord::Deregister { target: target.0 });
                }
            }
        }
        for (holder, targets) in new_edges {
            for (target, capacity) in targets {
                // Idempotent: backends skip no-op re-registrations.
                self.stores.apply(holder, WalRecord::Register { target: target.0, capacity });
            }
        }
    }

    /// Publishes every mobile node's current location (initial state).
    pub fn publish_all_locations(&mut self) -> Result<()> {
        let keys = self.mobile_keys.clone();
        for k in keys {
            self.publish_location(k)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// Protocol configuration.
    pub fn config(&self) -> &BristleConfig {
        &self.cfg
    }

    /// The key-assignment scheme in force.
    pub fn naming(&self) -> &NamingScheme {
        &self.naming
    }

    /// Total nodes.
    pub fn len(&self) -> usize {
        self.info.len()
    }

    /// Whether the system has no nodes.
    pub fn is_empty(&self) -> bool {
        self.info.is_empty()
    }

    /// Keys of the stationary nodes.
    pub fn stationary_keys(&self) -> &[Key] {
        &self.stationary_keys
    }

    /// Keys of the mobile nodes.
    pub fn mobile_keys(&self) -> &[Key] {
        &self.mobile_keys
    }

    /// Static facts about a node.
    pub fn node_info(&self, key: Key) -> Result<&NodeInfo> {
        self.interner.get(key).and_then(|i| self.info.get(i)).ok_or(BristleError::UnknownNode(key))
    }

    /// Whether `key` names a mobile node.
    pub fn is_mobile(&self, key: Key) -> bool {
        self.interner
            .get(key)
            .and_then(|i| self.info.get(i))
            .is_some_and(|i| i.mobility == Mobility::Mobile)
    }

    /// The key ⇄ dense-index bijection. Read-only; useful for sharing
    /// per-node state with measurement threads.
    pub fn interner(&self) -> &KeyInterner {
        &self.interner
    }

    /// The flat per-node info arena, indexed by [`NodeIdx`].
    pub fn info_arena(&self) -> &NodeArena<NodeInfo> {
        &self.info
    }

    /// The distance oracle over the physical topology.
    pub fn distances(&self) -> &DistanceCache {
        &self.dcache
    }

    /// A shareable handle to the distance oracle (useful when a call
    /// needs the oracle and disjoint mutable parts of the system at once).
    pub fn distances_arc(&self) -> Arc<DistanceCache> {
        Arc::clone(&self.dcache)
    }

    /// Routers hosts may attach to.
    pub fn stub_routers(&self) -> &[RouterId] {
        &self.stub_routers
    }

    /// The node's current physical router.
    pub fn router_of(&self, key: Key) -> Result<RouterId> {
        Ok(self.attachments.router(self.node_info(key)?.host))
    }

    /// Mutable access to the system RNG (workload generators share it).
    pub fn rng(&mut self) -> &mut Pcg64 {
        &mut self.rng
    }

    // ------------------------------------------------------------------
    // Location management (§2.3): register / update / publish.
    // ------------------------------------------------------------------

    /// Picks the stationary-layer entry point a node uses to inject
    /// messages into the location-management layer: itself when
    /// stationary, otherwise the physically closest stationary node in
    /// its routing state (falling back to the stationary owner of its own
    /// key when it knows none).
    pub fn entry_stationary_for(&self, from: Key) -> Result<Key> {
        let info = self.node_info(from)?;
        if info.mobility == Mobility::Stationary {
            return Ok(from);
        }
        if self.stationary.is_empty() {
            return Err(BristleError::NoStationaryLayer);
        }
        let from_router = self.attachments.router(info.host);
        let node = self.mobile.node(from)?;
        let mut best: Option<(u64, Key)> = None;
        for e in &node.entries {
            if self.is_mobile(e.key) || !self.stationary.contains(e.key) {
                continue;
            }
            // Stationary nodes never move, so their cached address router
            // is their actual router.
            let r = self.attachments.router(self.info_unchecked(e.key).host);
            let d = self.dcache.distance(from_router, r);
            if best.map(|(b, _)| d < b).unwrap_or(true) {
                best = Some((d, e.key));
            }
        }
        match best {
            Some((_, k)) => Ok(k),
            None => Ok(self.stationary.owner(from)?),
        }
    }

    /// Publishes `key`'s current location to the stationary layer
    /// (replicated `location_replicas` ways). Returns hops spent.
    pub fn publish_location(&mut self, key: Key) -> Result<usize> {
        let info = *self.node_info(key)?;
        if info.mobility != Mobility::Mobile {
            return Err(BristleError::NotMobile(key));
        }
        let record = LocationRecord::fresh(
            key,
            info.host,
            &self.attachments,
            info.incarnation,
            info.seq,
            self.clock.now(),
            self.cfg.location_ttl,
        );
        let entry = self.entry_stationary_for(key)?;
        // First hop: the mobile node hands the record to its entry point.
        let from_router = self.attachments.router(info.host);
        let entry_router = self.attachments.router(self.info_unchecked(entry).host);
        self.meter.record(MessageKind::Publish, self.dcache.distance(from_router, entry_router));
        let mut hops = 1;
        let set = self.stationary.publish(
            entry,
            key,
            record,
            self.cfg.location_replicas,
            &self.attachments,
            &self.dcache,
            &mut self.meter,
        )?;
        hops += set.len(); // replica pushes
                           // Each replica durably records the copy it now stores.
        let put = durable::record_put(&record);
        for &replica in &set {
            self.stores.apply(replica, put);
        }
        Ok(hops)
    }

    /// Installs `record` into `holder`'s stationary-layer shard unless a
    /// strictly newer copy (by incarnation, then sequence) is already
    /// there, mirroring the write into `holder`'s durable store. The
    /// messaging driver's publish path lands here. Returns whether the
    /// record was installed.
    pub fn install_record(&mut self, holder: Key, record: LocationRecord) -> Result<bool> {
        let node = self.stationary.node_mut(holder)?;
        if let Some(existing) = node.store.get(&record.subject) {
            if (existing.incarnation, existing.seq) > (record.incarnation, record.seq) {
                return Ok(false);
            }
        }
        node.store.insert(record.subject, record);
        self.stores.apply(holder, durable::record_put(&record));
        Ok(true)
    }

    /// Registers `who`'s interest in mobile node `target` (§2.3.1's
    /// `register`), reporting `who`'s capacity, and grants `who` a lease
    /// on `target`'s current address.
    pub fn register_interest(&mut self, who: Key, target: Key) -> Result<()> {
        let who_info = *self.node_info(who)?;
        if !self.is_mobile(target) {
            return Err(BristleError::NotMobile(target));
        }
        let target_info = *self.node_info(target)?;
        let cost = self.dcache.distance(
            self.attachments.router(who_info.host),
            self.attachments.router(target_info.host),
        );
        self.meter.record(MessageKind::Register, cost);
        self.registry.register(Registrant::new(who, who_info.capacity), target);
        self.leases.grant(who, target, self.clock.now(), self.cfg.lease_ttl);
        self.stores
            .apply(who, WalRecord::Register { target: target.0, capacity: who_info.capacity });
        self.stores.apply(
            who,
            WalRecord::LeaseGrant {
                subject: target.0,
                expires: self.clock.now().plus(self.cfg.lease_ttl).0,
            },
        );
        Ok(())
    }

    /// Materializes `key`'s LDT from the current registration state
    /// without sending anything.
    ///
    /// Registrants that abruptly failed since registering are pruned
    /// here — in protocol terms, the root's sends to them time out and
    /// it drops them from R(i); the registry itself is lazily cleaned by
    /// the next [`BristleSystem::sync_registrations`].
    pub fn build_ldt(&self, key: Key) -> Result<Ldt> {
        let info = self.node_info(key)?;
        let root = Registrant::new(key, info.capacity);
        let registrants: Vec<Registrant> = self
            .registry
            .registrants_of(key)
            .iter()
            .copied()
            .filter(|r| self.contains_node(r.key))
            .collect();
        let used = |k: Key| self.mobile.node(k).map(|n| n.used).unwrap_or(0);
        Ok(Ldt::build(root, &registrants, used, self.cfg.unit_cost))
    }

    /// Disseminates `key`'s current address through its LDT (`update`):
    /// one message per tree edge, each granting the receiving member a
    /// fresh lease and patching its cached state-pair.
    pub fn advertise_update(&mut self, key: Key) -> Result<(Ldt, usize, u64)> {
        let info = *self.node_info(key)?;
        let ldt = self.build_ldt(key)?;
        let new_addr = bristle_overlay::addr::NetAddr::current(info.host, &self.attachments);
        let now = self.clock.now();
        let mut sent = 0usize;
        let mut total_cost = 0u64;
        let edges: Vec<(Key, Key)> = ldt.edges().collect();
        for (parent, child) in edges {
            let pr = self.router_of(parent)?;
            let cr = self.router_of(child)?;
            let cost = self.dcache.distance(pr, cr);
            self.meter.record(MessageKind::Update, cost);
            sent += 1;
            total_cost += cost;
            self.leases.grant(child, key, now, self.cfg.lease_ttl);
            self.stores.apply(
                child,
                WalRecord::LeaseGrant { subject: key.0, expires: now.plus(self.cfg.lease_ttl).0 },
            );
            if let Ok(node) = self.mobile.node_mut(child) {
                if let Some(pair) = node.entry_mut(key) {
                    pair.addr = Some(new_addr);
                }
            }
        }
        Ok((ldt, sent, total_cost))
    }

    /// Moves a mobile node to a new random attachment point (or `to` if
    /// given), republishes its location, and pushes the update through its
    /// LDT. This is the full §2.3 `update` operation.
    pub fn move_node(&mut self, key: Key, to: Option<RouterId>) -> Result<MoveReport> {
        let info = *self.node_info(key)?;
        if info.mobility != Mobility::Mobile {
            return Err(BristleError::NotMobile(key));
        }
        let new_router = match to {
            Some(r) => {
                self.attachments.move_host(info.host, r);
                r
            }
            None => {
                let mut rng = self.rng.split(4);
                self.attachments.move_host_random(info.host, &self.stub_routers, &mut rng).router
            }
        };
        let idx = self.interner.get(key).expect("known");
        self.info.get_mut(idx).expect("live").seq += 1;
        let publish_hops = self.publish_location(key)?;
        let (ldt, updates_sent, update_cost) = self.advertise_update(key)?;
        Ok(MoveReport { new_router, publish_hops, ldt, updates_sent, update_cost })
    }

    /// Drops `key` from the stationary key list (leave/fail bookkeeping).
    pub(crate) fn retain_stationary(&mut self, key: Key) {
        self.stationary_keys.retain(|&k| k != key);
    }

    /// Drops `key` from the mobile key list (leave/fail bookkeeping).
    pub(crate) fn retain_mobile(&mut self, key: Key) {
        self.mobile_keys.retain(|&k| k != key);
    }

    /// Forgets a node's info record (leave/fail bookkeeping). The key's
    /// interned index survives — arena slots are vacated, never reused.
    pub(crate) fn forget(&mut self, key: Key) {
        if let Some(idx) = self.interner.get(key) {
            self.info.remove(idx);
        }
    }

    /// Sets a node's present workload `Used_i` (consumed capacity units).
    pub fn set_used(&mut self, key: Key, used: u32) -> Result<()> {
        self.mobile.node_mut(key)?.used = used;
        Ok(())
    }

    /// Advances the virtual clock and purges expired leases.
    pub fn tick(&mut self, ticks: u64) -> usize {
        self.clock.advance(ticks);
        let purged = self.leases.purge_expired_pairs(self.clock.now());
        for &(holder, subject) in &purged {
            self.stores.apply(holder, WalRecord::LeaseRevoke { subject: subject.0 });
        }
        self.prune_graveyard();
        purged.len()
    }

    /// Reclaims graveyard entries buried longer ago than
    /// [`BristleConfig::graveyard_retention`] (0 retains forever). A
    /// pruned corpse can no longer rejoin through the wrongful-burial
    /// path — it would re-admit from scratch — and its key stops
    /// counting as confirmed-dead, which is safe because any withdrawn
    /// record it could replay has long outlived its TTL by then.
    fn prune_graveyard(&mut self) {
        let retention = self.cfg.graveyard_retention;
        if retention == 0 {
            return;
        }
        let now = self.clock.now();
        let mut expired: Vec<Key> = self
            .buried_at
            .iter()
            .filter(|(_, &at)| at.plus(retention) <= now)
            .map(|(&k, _)| k)
            .collect();
        expired.sort_unstable();
        for key in expired {
            self.buried_at.remove(&key);
            self.graveyard.remove(&key);
            self.dead.remove(&key);
            self.stores.forget(key);
        }
    }

    /// Early-binding maintenance round: every mobile node republishes its
    /// location and re-advertises through its LDT; registrations are
    /// refreshed from the current routing state.
    pub fn refresh_bindings(&mut self) -> Result<()> {
        self.sync_registrations();
        let keys = self.mobile_keys.clone();
        for k in keys {
            self.publish_location(k)?;
            self.advertise_update(k)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(n_stat: usize, n_mob: usize, seed: u64) -> BristleSystem {
        BristleBuilder::new(seed)
            .stationary_nodes(n_stat)
            .mobile_nodes(n_mob)
            .topology(TransitStubConfig::tiny())
            .build()
            .unwrap()
    }

    #[test]
    fn sharded_rewire_matches_sequential_rewire() {
        let mut seq = small_system(48, 24, 5);
        let mut par = small_system(48, 24, 5);
        seq.rewire();
        par.rewire_with_workers(4);
        for key in seq.stationary.keys().collect::<Vec<_>>() {
            let a = seq.stationary.node(key).unwrap();
            let b = par.stationary.node(key).unwrap();
            assert_eq!(a.entries, b.entries, "stationary entries diverged at {key}");
            assert_eq!(a.leaf_keys, b.leaf_keys, "stationary leaves diverged at {key}");
        }
        for key in seq.mobile.keys().collect::<Vec<_>>() {
            let a = seq.mobile.node(key).unwrap();
            let b = par.mobile.node(key).unwrap();
            assert_eq!(a.entries, b.entries, "mobile entries diverged at {key}");
            assert_eq!(a.leaf_keys, b.leaf_keys, "mobile leaves diverged at {key}");
        }
    }

    #[test]
    fn builder_creates_requested_population() {
        let sys = small_system(40, 20, 1);
        assert_eq!(sys.len(), 60);
        assert_eq!(sys.stationary_keys().len(), 40);
        assert_eq!(sys.mobile_keys().len(), 20);
        assert_eq!(sys.stationary.len(), 40);
        assert_eq!(sys.mobile.len(), 60);
    }

    #[test]
    fn clustered_naming_separates_key_bands() {
        let sys = small_system(30, 30, 2);
        let naming = *sys.naming();
        for &k in sys.stationary_keys() {
            assert!(naming.permits(k, Mobility::Stationary), "{k}");
        }
        for &k in sys.mobile_keys() {
            assert!(naming.permits(k, Mobility::Mobile), "{k}");
        }
    }

    #[test]
    fn initial_locations_are_published_and_current() {
        let sys = small_system(30, 10, 3);
        for &m in sys.mobile_keys() {
            let owner = sys.stationary.owner(m).unwrap();
            let rec = sys.stationary.node(owner).unwrap().store.get(&m).expect("published");
            assert!(rec.is_current(&sys.attachments));
            assert_eq!(rec.subject, m);
        }
    }

    #[test]
    fn registrations_cover_reverse_pointers_of_mobile_nodes() {
        let sys = small_system(40, 20, 4);
        let rev = sys.mobile.reverse_index();
        for &m in sys.mobile_keys() {
            let holders = rev.get(&m).map(Vec::len).unwrap_or(0);
            assert_eq!(sys.registry.registrants_of(m).len(), holders, "target {m}");
        }
        // Stationary nodes collect no registrations.
        for &s in sys.stationary_keys() {
            assert!(sys.registry.registrants_of(s).is_empty());
        }
    }

    #[test]
    fn registrations_per_mobile_scale_like_log_n() {
        let sys = small_system(100, 50, 5);
        let avg =
            sys.mobile_keys().iter().map(|&m| sys.registry.registrants_of(m).len()).sum::<usize>()
                as f64
                / sys.mobile_keys().len() as f64;
        // O(log N): log2(150) ≈ 7.2, our tables hold ~2–5× that.
        assert!(avg > 3.0 && avg < 60.0, "avg registrants {avg}");
    }

    #[test]
    fn move_node_republishes_and_advertises() {
        let mut sys = small_system(40, 10, 6);
        let m = sys.mobile_keys()[0];
        let before_updates = sys.meter.count(MessageKind::Update);
        let report = sys.move_node(m, None).unwrap();
        assert!(report.publish_hops >= 1);
        assert_eq!(report.updates_sent, report.ldt.edge_count());
        assert_eq!(
            sys.meter.count(MessageKind::Update) - before_updates,
            report.updates_sent as u64
        );
        // The published record reflects the *new* attachment.
        let owner = sys.stationary.owner(m).unwrap();
        let rec = sys.stationary.node(owner).unwrap().store.get(&m).unwrap();
        assert!(rec.is_current(&sys.attachments));
        assert_eq!(rec.addr.router(), report.new_router);
        assert_eq!(rec.seq, 1);
    }

    #[test]
    fn move_to_explicit_router() {
        let mut sys = small_system(20, 5, 7);
        let m = sys.mobile_keys()[0];
        let target = sys.stub_routers()[0];
        let report = sys.move_node(m, Some(target)).unwrap();
        assert_eq!(report.new_router, target);
        assert_eq!(sys.router_of(m).unwrap(), target);
    }

    #[test]
    fn moving_stationary_node_is_rejected() {
        let mut sys = small_system(20, 5, 8);
        let s = sys.stationary_keys()[0];
        assert_eq!(sys.move_node(s, None).unwrap_err(), BristleError::NotMobile(s));
    }

    #[test]
    fn advertisement_grants_leases_and_patches_entries() {
        let mut sys = small_system(40, 10, 9);
        let m = sys.mobile_keys()[0];
        sys.move_node(m, None).unwrap();
        let members: Vec<Key> = sys.registry.registrants_of(m).iter().map(|r| r.key).collect();
        assert!(!members.is_empty());
        let now = sys.clock.now();
        for member in members {
            assert!(sys.leases.is_fresh(member, m, now), "member {member} lease missing");
            if let Some(pair) = sys.mobile.node(member).unwrap().entry(m) {
                assert!(pair.is_reachable(&sys.attachments), "entry not patched");
            }
        }
    }

    #[test]
    fn entry_stationary_for_stationary_is_self() {
        let sys = small_system(20, 5, 10);
        let s = sys.stationary_keys()[3];
        assert_eq!(sys.entry_stationary_for(s).unwrap(), s);
    }

    #[test]
    fn entry_stationary_for_mobile_is_stationary() {
        let sys = small_system(20, 20, 11);
        for &m in sys.mobile_keys() {
            let e = sys.entry_stationary_for(m).unwrap();
            assert!(!sys.is_mobile(e), "entry point {e} must be stationary");
        }
    }

    #[test]
    fn tick_purges_expired_leases() {
        let mut sys = small_system(20, 5, 12);
        let m = sys.mobile_keys()[0];
        sys.advertise_update(m).unwrap();
        let held = sys.leases.len();
        assert!(held > 0);
        let ttl = sys.config().lease_ttl;
        let purged = sys.tick(ttl + 1);
        assert_eq!(purged, held);
    }

    #[test]
    fn set_used_feeds_ldt_shape() {
        let mut sys = small_system(30, 10, 13);
        let m = sys.mobile_keys()[0];
        let free_depth = sys.build_ldt(m).unwrap().depth();
        // Saturate every node: the tree must degenerate toward a chain.
        let keys: Vec<Key> = sys.mobile.keys().collect();
        for k in keys {
            let cap = sys.node_info(k).unwrap().capacity;
            sys.set_used(k, cap).unwrap();
        }
        let busy_depth = sys.build_ldt(m).unwrap().depth();
        assert!(busy_depth >= free_depth, "busy {busy_depth} free {free_depth}");
    }

    #[test]
    fn deterministic_build() {
        let a = small_system(30, 10, 42);
        let b = small_system(30, 10, 42);
        let ka: Vec<Key> = a.mobile.keys().collect();
        let kb: Vec<Key> = b.mobile.keys().collect();
        assert_eq!(ka, kb);
        assert_eq!(a.registry.total_registrations(), b.registry.total_registrations());
    }
}
