//! Reversing a wrongful funeral (partition tolerance).
//!
//! [`crate::heal`] buries a node the failure detector confirmed dead.
//! When the verdict was wrong — the node was unreachable behind a
//! network partition, not crashed — the node refutes the verdict with a
//! bumped incarnation number (see `bristle_proto::machine`) and asks a
//! live sponsor to reverse the funeral. [`BristleSystem::rejoin_node`]
//! is that reversal: it re-admits the node from the corpse state the
//! funeral preserved, re-inserts it into the LDTs of every mobile
//! target it was registered to (capacity-aware, via the normal tree
//! build), restores its withdrawn location records at the fresher
//! incarnation, and re-registers interest both ways. The fresher
//! incarnation makes the restored records dominate anything the far
//! side published during the split, so
//! [`BristleSystem::anti_entropy_locations`] converges both sides onto
//! the post-rejoin state.

use bristle_overlay::key::Key;
use bristle_overlay::meter::MessageKind;

use crate::durable::WalRecord;
use crate::error::Result;
use crate::naming::Mobility;
use crate::registry::Registrant;
use crate::system::BristleSystem;

/// What [`BristleSystem::rejoin_node`] restored.
#[derive(Debug, Clone)]
pub struct RejoinReport {
    /// The resurrected node.
    pub key: Key,
    /// The incarnation the node lives at after the rejoin (strictly
    /// greater than the one it was buried at).
    pub incarnation: u64,
    /// Whether a funeral was actually reversed. `false` means the node
    /// was never buried (or was already rejoined) and nothing happened.
    pub reversed: bool,
    /// Whether the resurrected node is mobile.
    pub was_mobile: bool,
    /// Registration-state entries restored (both directions).
    pub registrations_restored: usize,
    /// Mobile targets whose LDTs regained the node and were
    /// re-disseminated.
    pub ldts_rejoined: Vec<Key>,
    /// Hops spent republishing the node's location (mobile only).
    pub publish_hops: usize,
}

impl BristleSystem {
    /// Whether `key` has corpse state available for a rejoin.
    pub fn can_rejoin(&self, key: Key) -> bool {
        self.graveyard.contains_key(&key)
    }

    /// Reverses the funeral of a wrongfully buried node.
    ///
    /// `incarnation` is the incarnation the node claims after learning
    /// of its own death (the protocol layer guarantees it exceeds the
    /// one the verdict was charged against); the restored node lives at
    /// `max(incarnation, buried_incarnation + 1)` so the rejoin always
    /// out-ranks the funeral even if the claim is stale.
    ///
    /// Idempotent: rejoining a node that was never buried — or was
    /// already rejoined — is a no-op with `reversed == false`.
    pub fn rejoin_node(&mut self, key: Key, incarnation: u64) -> Result<RejoinReport> {
        let mut report = RejoinReport {
            key,
            incarnation,
            reversed: false,
            was_mobile: false,
            registrations_restored: 0,
            ldts_rejoined: Vec::new(),
            publish_hops: 0,
        };
        let Some(mut info) = self.take_corpse(key) else {
            return Ok(report);
        };
        info.incarnation = incarnation.max(info.incarnation + 1);
        report.incarnation = info.incarnation;
        report.reversed = true;
        report.was_mobile = info.mobility == Mobility::Mobile;
        self.dead.remove(&key);
        // The node is alive again: its store resumes recording (the
        // readmit below mirrors the fresher incarnation into it).
        self.stores.thaw(key);

        // Structural resurrection: membership back, then rebuild wiring
        // so every table sees the returned node (the omniscient
        // equivalent of the Fig. 5 join walk the real node would run).
        self.readmit(key, info)?;
        self.rewire();

        // Re-register interest both ways (§2.3.1): the returned node
        // registers to the mobile subjects it now holds, and holders of
        // its state-pair register to it. Each restored edge is one
        // register message.
        let my_entries: Vec<Key> = self.mobile.node(key)?.entries.iter().map(|e| e.key).collect();
        for subject in my_entries {
            if self.is_mobile(subject)
                && self.registry.register(Registrant::new(key, info.capacity), subject)
            {
                self.stores
                    .apply(key, WalRecord::Register { target: subject.0, capacity: info.capacity });
                self.meter.bump(MessageKind::Register, 1);
                report.registrations_restored += 1;
            }
        }
        if report.was_mobile {
            let mut holders: Vec<Key> =
                self.mobile.reverse_index().remove(&key).unwrap_or_default();
            holders.sort_unstable();
            for holder in holders {
                let cap = self.node_info(holder)?.capacity;
                if self.registry.register(Registrant::new(holder, cap), key) {
                    self.stores.apply(holder, WalRecord::Register { target: key.0, capacity: cap });
                    self.meter.bump(MessageKind::Register, 1);
                    report.registrations_restored += 1;
                }
            }
        }

        // Every LDT the node re-entered as a registrant regained a
        // member; re-disseminate those trees (capacity-aware partitioning
        // happens inside the tree build, exactly as at a funeral).
        let mut targets: Vec<Key> = self
            .registry
            .iter()
            .filter(|(target, regs)| *target != key && regs.iter().any(|r| r.key == key))
            .map(|(target, _)| target)
            .filter(|&t| self.node_info(t).is_ok())
            .collect();
        targets.sort_unstable();
        for target in targets {
            self.advertise_update(target)?;
            self.meter.bump(MessageKind::LdtRepair, 1);
            report.ldts_rejoined.push(target);
        }

        // The funeral withdrew the node's published records; restore them
        // at the fresher incarnation and push the new address through its
        // own LDT.
        if report.was_mobile {
            report.publish_hops = self.publish_location(key)?;
            self.advertise_update(key)?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BristleConfig;
    use crate::system::BristleBuilder;
    use bristle_netsim::transit_stub::TransitStubConfig;

    fn system(n_stat: usize, n_mob: usize, seed: u64) -> BristleSystem {
        BristleBuilder::new(seed)
            .stationary_nodes(n_stat)
            .mobile_nodes(n_mob)
            .topology(TransitStubConfig::tiny())
            .config(BristleConfig::recommended())
            .build()
            .unwrap()
    }

    #[test]
    fn rejoin_reverses_a_funeral_end_to_end() {
        let mut sys = system(40, 12, 11);
        let victim = sys.mobile_keys()[0];
        let buried_inc = sys.node_info(victim).unwrap().incarnation;
        sys.confirm_dead(victim).unwrap();
        assert!(sys.is_confirmed_dead(victim));
        assert!(sys.can_rejoin(victim));

        let report = sys.rejoin_node(victim, buried_inc + 1).unwrap();
        assert!(report.reversed);
        assert!(report.was_mobile);
        assert!(report.incarnation > buried_inc, "rejoin out-ranks the funeral");
        assert!(!sys.is_confirmed_dead(victim), "no longer dead");
        assert!(!sys.can_rejoin(victim), "corpse state consumed");
        assert_eq!(sys.node_info(victim).unwrap().incarnation, report.incarnation);
        assert!(sys.mobile_keys().contains(&victim));

        // The location records withdrawn at the funeral are back, at the
        // fresher incarnation, and discovery resolves again.
        assert!(report.publish_hops > 0);
        let owner = sys.stationary.owner(victim).unwrap();
        let rec = *sys.stationary.node(owner).unwrap().store.get(&victim).unwrap();
        assert_eq!(rec.incarnation, report.incarnation);
        let asker = sys.stationary_keys()[0];
        let disc = sys.discover(asker, victim).unwrap();
        assert!(disc.resolved.is_some(), "discovery works after rejoin");

        // Registration state mentions the node again, both directions.
        assert!(report.registrations_restored > 0);
        let registered_somewhere =
            sys.registry.iter().any(|(_, regs)| regs.iter().any(|r| r.key == victim));
        assert!(registered_somewhere, "the node registers to subjects it holds");

        // Every re-disseminated LDT contains the resurrected member.
        for &t in &report.ldts_rejoined {
            assert!(sys.build_ldt(t).unwrap().contains(victim));
        }
    }

    #[test]
    fn rejoin_without_a_funeral_is_a_no_op() {
        let mut sys = system(30, 8, 12);
        let node = sys.mobile_keys()[0];
        let before = sys.meter.count(MessageKind::Register);
        let report = sys.rejoin_node(node, 5).unwrap();
        assert!(!report.reversed);
        assert_eq!(report.registrations_restored, 0);
        assert_eq!(sys.meter.count(MessageKind::Register), before);
        // And so is rejoining twice.
        sys.confirm_dead(node).unwrap();
        assert!(sys.rejoin_node(node, 1).unwrap().reversed);
        assert!(!sys.rejoin_node(node, 1).unwrap().reversed);
    }

    #[test]
    fn stale_rejoin_claim_still_outranks_the_burial() {
        let mut sys = system(30, 8, 13);
        let victim = sys.mobile_keys()[1];
        let buried_inc = sys.node_info(victim).unwrap().incarnation;
        sys.confirm_dead(victim).unwrap();
        // A claim no fresher than the burial is bumped past it anyway.
        let report = sys.rejoin_node(victim, buried_inc).unwrap();
        assert!(report.reversed);
        assert_eq!(report.incarnation, buried_inc + 1);
    }

    #[test]
    fn stationary_rejoin_restores_the_replica() {
        let mut sys = system(40, 10, 14);
        let subject = sys.mobile_keys()[0];
        let primary = sys.stationary.owner(subject).unwrap();
        sys.confirm_dead(primary).unwrap();
        let report = sys.rejoin_node(primary, 1).unwrap();
        assert!(report.reversed);
        assert!(!report.was_mobile);
        assert_eq!(report.publish_hops, 0, "stationary nodes publish nothing");
        assert!(sys.stationary_keys().contains(&primary));
        // Anti-entropy refills whatever store the returned replica should
        // hold; a second pass finds nothing left.
        sys.anti_entropy_locations().unwrap();
        assert_eq!(sys.anti_entropy_locations().unwrap(), 0);
    }

    #[test]
    fn rejoin_republication_stamps_are_never_in_the_future() {
        // Regression for the SimTime::since invariant: a record stamped
        // ahead of the clock would read as age 0 forever and never
        // expire. The rejoin path republishes the victim's location, so
        // pin that every restored record carries published_at <= now and
        // ages normally from there (computing the age at all would trip
        // the debug_assert in `since` if the stamp were in the future).
        let mut sys = system(40, 12, 16);
        let victim = sys.mobile_keys()[0];
        sys.clock.advance(100);
        sys.confirm_dead(victim).unwrap();
        sys.clock.advance(50);
        let report = sys.rejoin_node(victim, 1).unwrap();
        assert!(report.reversed);
        let now = sys.clock.now();
        let owner = sys.stationary.owner(victim).unwrap();
        let rec = *sys.stationary.node(owner).unwrap().store.get(&victim).unwrap();
        assert!(
            rec.published_at <= now,
            "republished at {} but clock is {}",
            rec.published_at,
            now
        );
        assert!(!rec.is_expired(now), "fresh at republication");
        assert!(rec.is_expired(rec.published_at.plus(rec.ttl)), "expires after its ttl");
    }

    #[test]
    fn rejoin_is_deterministic() {
        let run = |seed: u64| {
            let mut sys = system(30, 10, seed);
            let victim = sys.mobile_keys()[2];
            sys.confirm_dead(victim).unwrap();
            let report = sys.rejoin_node(victim, 1).unwrap();
            let tallies: Vec<(MessageKind, u64, u64)> = bristle_overlay::meter::ALL_KINDS
                .iter()
                .map(|&k| (k, sys.meter.count(k), sys.meter.cost(k)))
                .collect();
            (report.registrations_restored, report.ldts_rejoined, tallies)
        };
        assert_eq!(run(15), run(15), "same seed, same resurrection, same bill");
    }
}
