//! Crash-failure confirmation and self-healing (robustness layer).
//!
//! When the failure detector (in `bristle-proto`) confirms a node dead,
//! the system must do more than forget it: every LDT the corpse belonged
//! to has an orphaned subtree that would miss future `update`s, leases it
//! held are worthless, and — if it was stationary — the location records
//! it stored are gone from one replica. [`BristleSystem::confirm_dead`]
//! performs the whole funeral in one deterministic pass and reports what
//! it fixed; [`BristleSystem::anti_entropy_locations`] is the periodic
//! reconciliation that restores full replication afterwards.

use bristle_overlay::key::Key;
use bristle_overlay::meter::MessageKind;

use crate::durable::{self, WalRecord};
use crate::error::Result;
use crate::ldt::Ldt;
use crate::registry::Registrant;
use crate::system::BristleSystem;

/// What [`BristleSystem::confirm_dead`] repaired.
#[derive(Debug, Clone)]
pub struct DeathReport {
    /// The node declared dead.
    pub dead: Key,
    /// Whether the node was still present (false on repeated confirmations
    /// or when the corpse was already removed by other means).
    pub was_present: bool,
    /// Whether the dead node was mobile.
    pub was_mobile: bool,
    /// Mobile targets whose LDTs lost a member and were re-grafted.
    pub ldts_repaired: Vec<Key>,
    /// Orphaned LDT descendants re-attached across all repaired trees.
    pub orphans_regrafted: usize,
    /// Registration-state entries pruned (as registrant and as target).
    pub registrations_pruned: usize,
    /// Lease contracts revoked (held by or granted on the dead node).
    pub leases_revoked: usize,
    /// Stale routing-table entries dropped by the repair sweeps.
    pub entries_dropped: usize,
    /// Location-record copies removed (a dead *mobile* node's records
    /// must not keep answering `_discovery`).
    pub records_unpublished: usize,
    /// Whether every repaired tree passed the reachability invariant:
    /// root-rooted, cycle-free, and containing all surviving registrants.
    pub invariant_ok: bool,
}

impl BristleSystem {
    /// Whether `key` has been confirmed crashed.
    pub fn is_confirmed_dead(&self, key: Key) -> bool {
        self.dead.contains(&key)
    }

    /// Declares `key` crashed and heals everything it touched:
    ///
    /// 1. materializes the LDT of every live mobile target `key` was
    ///    registered to (while the corpse is still a member),
    /// 2. removes the corpse from both layers and prunes its
    ///    registrations and leases,
    /// 3. sweeps stale routing entries out of both layers,
    /// 4. re-grafts each orphaned LDT subtree via [`Ldt::heal`] and
    ///    disseminates the repaired tree (one `update` per edge, counted
    ///    as [`MessageKind::LdtRepair`] per tree),
    /// 5. unpublishes a dead mobile node's location records so
    ///    `_discovery` stops resurrecting it.
    ///
    /// Idempotent: confirming an already-confirmed corpse is a no-op.
    pub fn confirm_dead(&mut self, key: Key) -> Result<DeathReport> {
        let mut report = DeathReport {
            dead: key,
            was_present: false,
            was_mobile: false,
            ldts_repaired: Vec::new(),
            orphans_regrafted: 0,
            registrations_pruned: 0,
            leases_revoked: 0,
            entries_dropped: 0,
            records_unpublished: 0,
            invariant_ok: true,
        };
        if !self.dead.insert(key) {
            return Ok(report);
        }
        // The corpse's durable store must reflect its state *as of the
        // crash*: freeze it before any funeral bookkeeping, so cleanup
        // performed about it by survivors is not written into it.
        self.stores.freeze(key);
        report.was_present = self.node_info(key).is_ok();
        report.was_mobile = self.is_mobile(key);

        // (1) Targets whose LDT contains the corpse, with trees built
        // while the corpse is still registered (sorted for determinism).
        let mut affected: Vec<Key> = self
            .registry
            .iter()
            .filter(|(target, regs)| *target != key && regs.iter().any(|r| r.key == key))
            .map(|(target, _)| target)
            .filter(|&t| self.node_info(t).is_ok())
            .collect();
        affected.sort_unstable();
        let mut trees: Vec<(Key, Ldt)> = Vec::with_capacity(affected.len());
        for &target in &affected {
            trees.push((target, self.build_ldt(target)?));
        }

        // (2) Remove the corpse and its bookkeeping. Its `NodeInfo` is
        // kept in the graveyard: if the verdict turns out to be wrong
        // (partition, not crash), [`crate::rejoin`] reverses the funeral
        // from that corpse state instead of re-admitting a stranger.
        if report.was_present {
            let corpse = *self.node_info(key)?;
            self.remember_corpse(key, corpse);
            self.fail_node(key)?;
        }
        // Survivors durably drop their edges to the corpse (its own
        // store is frozen, so only live holders are mirrored).
        let bereaved: Vec<Key> = self.registry.registrants_of(key).iter().map(|r| r.key).collect();
        for holder in bereaved {
            self.stores.apply(holder, WalRecord::Deregister { target: key.0 });
        }
        for holder in self.leases.holders_of_subject(key) {
            self.stores.apply(holder, WalRecord::LeaseRevoke { subject: key.0 });
        }
        report.registrations_pruned =
            self.registry.remove_everywhere(key) + self.registry.drop_target(key);
        report.leases_revoked = self.leases.revoke_subject(key) + self.leases.revoke_holder(key);

        // (3) Drop dangling routing entries so repairs route cleanly.
        let dcache = self.distances_arc();
        let mut rng = self.rng().split(6);
        let swept = self.mobile.repair_sweep(&self.attachments, &dcache, &mut rng, &mut self.meter);
        report.entries_dropped += swept.dropped;
        let swept =
            self.stationary.repair_sweep(&self.attachments, &dcache, &mut rng, &mut self.meter);
        report.entries_dropped += swept.dropped;

        // (4) Re-graft every orphaned subtree and disseminate the repair.
        let unit_cost = self.config().unit_cost;
        for (target, mut tree) in trees {
            let Some(healed) =
                tree.heal(key, |k| self.mobile.node(k).map(|n| n.used).unwrap_or(0), unit_cost)
            else {
                continue; // corpse was not actually a member
            };
            report.orphans_regrafted += healed.orphans;
            let survivors: Vec<Registrant> = self
                .registry
                .registrants_of(target)
                .iter()
                .copied()
                .filter(|r| self.node_info(r.key).is_ok())
                .collect();
            let reachable =
                tree.all_reachable_from_root() && survivors.iter().all(|r| tree.contains(r.key));
            report.invariant_ok &= reachable;
            self.advertise_update(target)?;
            self.meter.bump(MessageKind::LdtRepair, 1);
            report.ldts_repaired.push(target);
        }

        // (5) A dead mobile node's published location is a lie.
        if report.was_mobile {
            let set = self.stationary.replica_set(key, self.config().location_replicas)?;
            report.records_unpublished =
                self.stationary.unpublish(key, self.config().location_replicas)?;
            for &replica in &set {
                self.stores.apply(replica, WalRecord::RecordRemove { subject: key.0 });
            }
        }
        Ok(report)
    }

    /// Anti-entropy pass over the location store: for every live mobile
    /// node, reconciles its record across the current replica set — the
    /// newest copy (by incarnation, then sequence, then publication
    /// time) wins and is pushed to replicas that miss it or hold an
    /// older one. Restores full replication after stationary-node
    /// deaths, and resolves split-brain divergence after a partition
    /// heals: both sides apply the same total order, so they converge on
    /// the same record. Returns copies installed.
    pub fn anti_entropy_locations(&mut self) -> Result<usize> {
        let replicas = self.config().location_replicas;
        let subjects = self.mobile_keys().to_vec();
        let mut installed = 0usize;
        for subject in subjects {
            let set = self.stationary.replica_set(subject, replicas)?;
            let mut best: Option<(Key, crate::location::LocationRecord)> = None;
            for &replica in &set {
                if let Some(rec) = self.stationary.node(replica)?.store.get(&subject) {
                    best = Some(match best {
                        None => (replica, *rec),
                        Some((holder, have)) => {
                            let newer = have.newer_of(*rec);
                            if newer == have {
                                (holder, have)
                            } else {
                                (replica, newer)
                            }
                        }
                    });
                }
            }
            let Some((holder, record)) = best else {
                continue; // never published (or unpublished): nothing to heal
            };
            let holder_router = self.router_of(holder)?;
            for &replica in &set {
                let stale = match self.stationary.node(replica)?.store.get(&subject) {
                    Some(have) => have.newer_of(record) != *have,
                    None => true,
                };
                if !stale {
                    continue;
                }
                let cost = self.distances().distance(holder_router, self.router_of(replica)?);
                self.meter.record(MessageKind::Replicate, cost);
                self.stationary.node_mut(replica)?.store.insert(subject, record);
                self.stores.apply(replica, durable::record_put(&record));
                installed += 1;
            }
        }
        Ok(installed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BristleConfig;
    use crate::system::{BristleBuilder, BristleSystem};
    use bristle_netsim::transit_stub::TransitStubConfig;

    fn system(n_stat: usize, n_mob: usize, seed: u64) -> BristleSystem {
        BristleBuilder::new(seed)
            .stationary_nodes(n_stat)
            .mobile_nodes(n_mob)
            .topology(TransitStubConfig::tiny())
            .config(BristleConfig::recommended())
            .build()
            .unwrap()
    }

    /// Some (target, registrant) pair where the registrant is not the
    /// target itself.
    fn pick_member(sys: &BristleSystem) -> (Key, Key) {
        for &target in sys.mobile_keys() {
            if let Some(r) = sys.registry.registrants_of(target).iter().find(|r| r.key != target) {
                return (target, r.key);
            }
        }
        panic!("no registrations in test system");
    }

    #[test]
    fn confirm_dead_prunes_and_repairs_every_affected_ldt() {
        let mut sys = system(40, 12, 1);
        let (target, victim) = pick_member(&sys);
        let repairs_before = sys.meter.count(MessageKind::LdtRepair);
        let report = sys.confirm_dead(victim).unwrap();
        assert!(report.was_present);
        assert!(report.invariant_ok, "repaired trees must stay root-reachable");
        assert!(report.ldts_repaired.contains(&target), "the LDT that lost {victim} is repaired");
        assert!(report.registrations_pruned > 0);
        assert!(sys.is_confirmed_dead(victim));
        assert!(sys.node_info(victim).is_err(), "corpse removed from the system");
        assert_eq!(
            sys.meter.count(MessageKind::LdtRepair) - repairs_before,
            report.ldts_repaired.len() as u64
        );
        // The registry no longer mentions the corpse anywhere.
        for (t, regs) in sys.registry.iter() {
            assert_ne!(t, victim);
            assert!(regs.iter().all(|r| r.key != victim));
        }
        // Rebuilt trees exclude it and keep every survivor reachable.
        for &t in &report.ldts_repaired {
            let tree = sys.build_ldt(t).unwrap();
            assert!(!tree.contains(victim));
            assert!(tree.all_reachable_from_root());
        }
    }

    #[test]
    fn confirm_dead_is_idempotent() {
        let mut sys = system(30, 8, 2);
        let (_, victim) = pick_member(&sys);
        let first = sys.confirm_dead(victim).unwrap();
        assert!(first.was_present);
        let second = sys.confirm_dead(victim).unwrap();
        assert!(!second.was_present);
        assert!(second.ldts_repaired.is_empty());
        assert_eq!(second.registrations_pruned, 0);
    }

    #[test]
    fn dead_mobile_node_stops_answering_discovery() {
        let mut sys = system(30, 8, 3);
        let victim = sys.mobile_keys()[0];
        let report = sys.confirm_dead(victim).unwrap();
        assert!(report.was_mobile);
        assert!(report.records_unpublished > 0, "published records are withdrawn");
        let asker = sys.stationary_keys()[0];
        let disc = sys.discover(asker, victim).unwrap();
        assert!(disc.resolved.is_none(), "no stale resurrection after confirmation");
    }

    #[test]
    fn discovery_fails_over_to_replica_when_primary_dies() {
        let mut sys = system(40, 10, 4);
        assert!(sys.config().location_replicas >= 3, "test needs a replica chain");
        let subject = sys.mobile_keys()[0];
        let primary = sys.stationary.owner(subject).unwrap();
        let asker = *sys.stationary_keys().iter().find(|&&s| s != primary).unwrap();
        sys.confirm_dead(primary).unwrap();

        // The old second replica was promoted to owner and serves
        // directly — delivery survives the death without a probe.
        let disc = sys.discover(asker, subject).unwrap();
        assert!(disc.resolved.is_some(), "a surviving replica must answer");
        assert_eq!(sys.meter.count(MessageKind::ReplicaFailover), 0, "owner-served, no probe");

        // Model the replication gap: the promoted owner has not yet
        // received the record (the same state a freshly joined owner is
        // in). The chain must absorb the miss, and the failover counts.
        let new_owner = sys.stationary.owner(subject).unwrap();
        sys.stationary.node_mut(new_owner).unwrap().store.remove(&subject);
        let disc = sys.discover(asker, subject).unwrap();
        assert!(disc.resolved.is_some(), "a deeper replica must answer");
        assert_eq!(sys.meter.count(MessageKind::ReplicaFailover), 1, "probed failover is metered");
    }

    #[test]
    fn anti_entropy_restores_replication_after_stationary_death() {
        let mut sys = system(40, 10, 5);
        let replicas = sys.config().location_replicas;
        let subject = sys.mobile_keys()[0];
        let primary = sys.stationary.owner(subject).unwrap();
        sys.confirm_dead(primary).unwrap();
        let installed = sys.anti_entropy_locations().unwrap();
        assert!(installed > 0, "lost copies must be re-installed");
        let set = sys.stationary.replica_set(subject, replicas).unwrap();
        for r in set {
            assert!(
                sys.stationary.node(r).unwrap().store.contains_key(&subject),
                "replica {r} must hold {subject} after reconciliation"
            );
        }
        // A second pass finds nothing left to fix.
        assert_eq!(sys.anti_entropy_locations().unwrap(), 0);
    }

    #[test]
    fn anti_entropy_prefers_the_newest_record() {
        let mut sys = system(40, 10, 6);
        let replicas = sys.config().location_replicas;
        let subject = sys.mobile_keys()[0];
        // Move the subject so a fresh record (seq 1) lands at the replica
        // set, then plant a stale seq-0 copy at the first replica.
        sys.move_node(subject, None).unwrap();
        let set = sys.stationary.replica_set(subject, replicas).unwrap();
        let fresh = *sys.stationary.node(set[0]).unwrap().store.get(&subject).unwrap();
        let mut stale = fresh;
        stale.seq = 0;
        sys.stationary.node_mut(set[0]).unwrap().store.insert(subject, stale);
        sys.anti_entropy_locations().unwrap();
        for &r in &set {
            let rec = sys.stationary.node(r).unwrap().store.get(&subject).unwrap();
            assert_eq!(rec.seq, fresh.seq, "newest copy wins at replica {r}");
        }
    }

    #[test]
    fn anti_entropy_ranks_incarnation_above_seq() {
        let mut sys = system(40, 10, 8);
        let replicas = sys.config().location_replicas;
        let subject = sys.mobile_keys()[0];
        sys.move_node(subject, None).unwrap();
        let set = sys.stationary.replica_set(subject, replicas).unwrap();
        // Split-brain shape: one replica holds a far-side record from the
        // subject's previous life with an inflated seq; the rest hold the
        // post-rejoin record at a fresher incarnation.
        let current = *sys.stationary.node(set[0]).unwrap().store.get(&subject).unwrap();
        let mut far_side = current;
        far_side.seq = current.seq + 50;
        sys.stationary.node_mut(set[0]).unwrap().store.insert(subject, far_side);
        let mut rejoined = current;
        rejoined.incarnation = current.incarnation + 1;
        for &r in &set[1..] {
            sys.stationary.node_mut(r).unwrap().store.insert(subject, rejoined);
        }
        sys.anti_entropy_locations().unwrap();
        for &r in &set {
            let rec = sys.stationary.node(r).unwrap().store.get(&subject).unwrap();
            assert_eq!(
                (rec.incarnation, rec.seq),
                (rejoined.incarnation, rejoined.seq),
                "fresher incarnation beats inflated far-side seq at replica {r}"
            );
        }
    }

    #[test]
    fn confirm_dead_meter_trace_is_deterministic() {
        let run = |seed: u64| {
            let mut sys = system(30, 10, seed);
            let (_, victim) = pick_member(&sys);
            sys.confirm_dead(victim).unwrap();
            let tallies: Vec<(MessageKind, u64, u64)> = bristle_overlay::meter::ALL_KINDS
                .iter()
                .map(|&k| (k, sys.meter.count(k), sys.meter.cost(k)))
                .collect();
            tallies
        };
        assert_eq!(run(7), run(7), "same seed, same funeral, same bill");
    }

    #[test]
    fn graveyard_prunes_corpses_past_retention() {
        let mut cfg = BristleConfig::recommended();
        cfg.graveyard_retention = 100;
        let mut sys = BristleBuilder::new(5)
            .stationary_nodes(30)
            .mobile_nodes(8)
            .topology(TransitStubConfig::tiny())
            .config(cfg)
            .build()
            .unwrap();
        let victim = sys.mobile_keys()[0];
        sys.confirm_dead(victim).unwrap();
        assert!(sys.is_confirmed_dead(victim));
        assert_eq!(sys.graveyard_len(), 1);
        // Inside the window the corpse is still held.
        sys.tick(99);
        assert_eq!(sys.graveyard_len(), 1, "retention window still open");
        assert!(sys.is_confirmed_dead(victim));
        // One more tick closes the window.
        sys.tick(1);
        assert_eq!(sys.graveyard_len(), 0, "corpse pruned at retention");
        assert!(!sys.is_confirmed_dead(victim), "dead-set entry reclaimed too");
    }

    #[test]
    fn retention_zero_remembers_corpses_forever() {
        let mut cfg = BristleConfig::recommended();
        cfg.graveyard_retention = 0;
        let mut sys = BristleBuilder::new(6)
            .stationary_nodes(30)
            .mobile_nodes(8)
            .topology(TransitStubConfig::tiny())
            .config(cfg)
            .build()
            .unwrap();
        let victim = sys.mobile_keys()[0];
        sys.confirm_dead(victim).unwrap();
        sys.tick(1_000_000);
        assert_eq!(sys.graveyard_len(), 1, "0 disables pruning");
        assert!(sys.is_confirmed_dead(victim));
    }

    #[test]
    fn graveyard_stays_bounded_under_perpetual_churn() {
        let mut cfg = BristleConfig::recommended();
        cfg.graveyard_retention = 100;
        let mut sys = BristleBuilder::new(7)
            .stationary_nodes(40)
            .mobile_nodes(12)
            .topology(TransitStubConfig::tiny())
            .config(cfg)
            .build()
            .unwrap();
        // One funeral every 60 ticks: at most ceil(100/60) + 1 = 3
        // corpses can be inside the retention window at once, no matter
        // how long the churn runs.
        let victims: Vec<Key> = sys.mobile_keys().to_vec();
        let mut peak = 0usize;
        for victim in victims {
            sys.confirm_dead(victim).unwrap();
            peak = peak.max(sys.graveyard_len());
            sys.tick(60);
            peak = peak.max(sys.graveyard_len());
        }
        assert!(peak <= 3, "graveyard must stay bounded, saw {peak}");
        sys.tick(200);
        assert_eq!(sys.graveyard_len(), 0, "quiescence drains the graveyard");
    }
}
