//! Virtual simulation time.
//!
//! Leases, refresh periods and movement schedules all run on a discrete
//! virtual clock. One tick has no fixed physical meaning; experiments pick
//! their own scale (the defaults treat one tick ≈ one second).

/// A point in virtual time (ticks since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// This time advanced by `ticks`.
    #[inline]
    pub fn plus(self, ticks: u64) -> SimTime {
        SimTime(self.0.saturating_add(ticks))
    }

    /// Ticks elapsed since `earlier`.
    ///
    /// Requires `earlier <= self`: elapsed time against a *future*
    /// timestamp is a caller bug (a record stamped in the future would
    /// read as age 0 forever and never expire). Debug builds panic on a
    /// violation; release builds keep the historical saturate-to-zero
    /// behavior so a latent inversion degrades to "not yet expired"
    /// instead of a wrap-around to u64::MAX ticks.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        debug_assert!(
            earlier.0 <= self.0,
            "SimTime::since called with future timestamp: {} is after {}",
            earlier,
            self
        );
        self.0.saturating_sub(earlier.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A monotone virtual clock.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `ticks` and returns the new time.
    pub fn advance(&mut self, ticks: u64) -> SimTime {
        self.now = self.now.plus(ticks);
        self.now
    }

    /// Jumps to an absolute time; must not move backwards.
    pub fn set(&mut self, t: SimTime) {
        assert!(t >= self.now, "clock cannot run backwards ({} -> {})", self.now, t);
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(10);
        assert_eq!(t.plus(5), SimTime(15));
        assert_eq!(t.since(SimTime(4)), 6);
        assert_eq!(t.since(t), 0, "zero at the boundary");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "future timestamp")]
    fn since_rejects_future_timestamps_in_debug() {
        let _ = SimTime(4).since(SimTime(10));
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn since_saturates_in_release() {
        assert_eq!(SimTime(4).since(SimTime(10)), 0);
    }

    #[test]
    fn clock_advances() {
        let mut c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.advance(3), SimTime(3));
        c.set(SimTime(10));
        assert_eq!(c.now(), SimTime(10));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_rejects_backwards() {
        let mut c = Clock::new();
        c.advance(5);
        c.set(SimTime(2));
    }
}
