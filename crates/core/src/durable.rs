//! Per-node durable-state stores (the `bristle-store` integration).
//!
//! Every repository mutation a node performs — identity/incarnation
//! changes, location-record writes at its shard of the stationary
//! layer, registrations, leases — is mirrored as a
//! [`WalRecord`] into that node's [`StateStore`]. The default backend
//! is [`bristle_store::MemBackend`], which folds in memory and costs
//! nothing; attaching a [`WalBackend`] makes the node's state survive a
//! crash, which [`crate::restart`] exploits to rejoin with its shard
//! intact instead of re-learning it from the overlay.
//!
//! Store mutations never touch the meter, the RNG, or the clock:
//! attaching, detaching or swapping backends cannot perturb a seeded
//! run (the flight-recorder golden trace pins this).

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;

use bristle_netsim::attach::{Attachment, HostId};
use bristle_netsim::graph::RouterId;
use bristle_overlay::addr::NetAddr;
use bristle_overlay::key::Key;
pub use bristle_store::WalRecord;
use bristle_store::{DurableState, MemBackend, ReplayReport, StateStore, StoredRecord, WalBackend};

use crate::location::LocationRecord;
use crate::time::SimTime;

/// All per-node stores, keyed by node. Nodes get a lazily created
/// [`MemBackend`] on first mutation; a durable backend is opted into
/// with [`StoreHub::attach_wal`].
#[derive(Default)]
pub struct StoreHub {
    backends: HashMap<Key, Box<dyn StateStore>>,
    /// Nodes whose store is frozen: a crashed (or departed) node's disk
    /// must stop changing at the moment it dies, so funeral cleanup
    /// performed *about* it by survivors is not written into it.
    frozen: HashSet<Key>,
    /// `(directory, snapshot_every)` of WAL-backed nodes, kept so a
    /// crash-restart can reopen the store from disk.
    wal_meta: HashMap<Key, (PathBuf, u64)>,
}

impl std::fmt::Debug for StoreHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreHub")
            .field("backends", &self.backends.len())
            .field("frozen", &self.frozen.len())
            .field("wal", &self.wal_meta.len())
            .finish()
    }
}

impl StoreHub {
    /// An empty hub.
    pub fn new() -> StoreHub {
        StoreHub::default()
    }

    /// Applies one mutation to `node`'s store (creating its default
    /// in-memory backend on first use). Frozen nodes are skipped — a
    /// dead node's store must reflect its state *as of the crash*.
    pub fn apply(&mut self, node: Key, rec: WalRecord) {
        if self.frozen.contains(&node) {
            return;
        }
        self.backends.entry(node).or_insert_with(|| Box::new(MemBackend::new())).apply(&rec);
    }

    /// The folded durable state of `node`, if it has ever mutated.
    pub fn state(&self, node: Key) -> Option<&DurableState> {
        self.backends.get(&node).map(|b| b.state())
    }

    /// The backend family serving `node` (`"mem"` for the default).
    pub fn kind(&self, node: Key) -> &'static str {
        self.backends.get(&node).map(|b| b.kind()).unwrap_or("mem")
    }

    /// Stops mutating `node`'s store (crash semantics). Idempotent.
    pub fn freeze(&mut self, node: Key) {
        self.frozen.insert(node);
    }

    /// Resumes mutating `node`'s store (restart/rejoin). Idempotent.
    pub fn thaw(&mut self, node: Key) {
        self.frozen.remove(&node);
    }

    /// Whether `node`'s store is frozen.
    pub fn is_frozen(&self, node: Key) -> bool {
        self.frozen.contains(&node)
    }

    /// Attaches a WAL backend for `node`, rebasing whatever state its
    /// current (in-memory) store holds into the log, and remembers the
    /// directory so [`StoreHub::reopen_wal`] can re-open it from disk.
    pub fn attach_wal(&mut self, node: Key, mut backend: WalBackend) {
        if let Some(existing) = self.backends.get(&node) {
            for rec in existing.state().to_records() {
                backend.apply(&rec);
            }
        }
        self.wal_meta.insert(node, (backend.dir().to_path_buf(), backend.snapshot_every()));
        self.backends.insert(node, Box::new(backend));
    }

    /// Re-opens `node`'s WAL backend from disk, discarding the in-memory
    /// fold — this is the process-restart path: what the node knows
    /// afterwards is exactly what the snapshot + log say. Returns the
    /// replay report, or `None` when the node has no WAL backend or the
    /// re-open failed (the existing in-memory backend then stays in
    /// place, so a disk fault degrades durability, not correctness).
    pub fn reopen_wal(&mut self, node: Key) -> Option<ReplayReport> {
        let (dir, snapshot_every) = self.wal_meta.get(&node).cloned()?;
        // Drop the live backend first so its append handle is closed.
        self.backends.remove(&node);
        match WalBackend::open(&dir, snapshot_every) {
            Ok(backend) => {
                let report = backend.replay_report().clone();
                self.backends.insert(node, Box::new(backend));
                Some(report)
            }
            Err(_) => None,
        }
    }

    /// Forgets `node`'s store entirely (graceful leave: the node is gone
    /// for good and its state must not resurrect).
    pub fn forget(&mut self, node: Key) {
        self.backends.remove(&node);
        self.frozen.remove(&node);
        self.wal_meta.remove(&node);
    }
}

/// The [`WalRecord`] mirroring a [`LocationRecord`] stored for
/// `record.subject`.
pub fn record_put(record: &LocationRecord) -> WalRecord {
    WalRecord::RecordPut {
        subject: record.subject.0,
        host: record.addr.host.0,
        router: record.addr.attachment.router.0,
        epoch: record.addr.attachment.epoch,
        incarnation: record.incarnation,
        seq: record.seq,
        published_at: record.published_at.0,
        ttl: record.ttl,
    }
}

/// Reconstructs the [`LocationRecord`] a [`StoredRecord`] persisted.
pub fn location_from_stored(subject: Key, sr: &StoredRecord) -> LocationRecord {
    LocationRecord {
        subject,
        addr: NetAddr {
            host: HostId(sr.host),
            attachment: Attachment { router: RouterId(sr.router), epoch: sr.epoch },
        },
        incarnation: sr.incarnation,
        seq: sr.seq,
        published_at: SimTime(sr.published_at),
        ttl: sr.ttl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_defaults_to_mem_and_freezes() {
        let mut hub = StoreHub::new();
        let k = Key(7);
        hub.apply(k, WalRecord::Identity { key: 7, incarnation: 1 });
        assert_eq!(hub.kind(k), "mem");
        assert_eq!(hub.state(k).unwrap().identity, Some((7, 1)));
        hub.freeze(k);
        hub.apply(k, WalRecord::Identity { key: 7, incarnation: 9 });
        assert_eq!(hub.state(k).unwrap().identity, Some((7, 1)), "frozen store unchanged");
        hub.thaw(k);
        hub.apply(k, WalRecord::Identity { key: 7, incarnation: 9 });
        assert_eq!(hub.state(k).unwrap().identity, Some((7, 9)));
    }

    #[test]
    fn attach_wal_rebases_and_reopen_reads_disk() {
        let dir = std::env::temp_dir()
            .join(format!("bristle-core-test-{}", std::process::id()))
            .join("hub-rebase");
        let _ = std::fs::remove_dir_all(&dir);
        let mut hub = StoreHub::new();
        let k = Key(3);
        hub.apply(k, WalRecord::Register { target: 11, capacity: 2 });
        hub.attach_wal(k, WalBackend::open(&dir, 0).unwrap());
        assert_eq!(hub.kind(k), "wal");
        hub.apply(k, WalRecord::Register { target: 12, capacity: 1 });
        let report = hub.reopen_wal(k).expect("reopen succeeds");
        assert_eq!(report.log_records, 2, "rebased + live record replayed");
        let regs = &hub.state(k).unwrap().registrations;
        assert_eq!(regs.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_conversion_round_trips() {
        let rec = LocationRecord {
            subject: Key(9),
            addr: NetAddr {
                host: HostId(4),
                attachment: Attachment { router: RouterId(2), epoch: 5 },
            },
            incarnation: 1,
            seq: 6,
            published_at: SimTime(100),
            ttl: 600,
        };
        let wal = record_put(&rec);
        let WalRecord::RecordPut { subject, .. } = wal else { panic!("wrong variant") };
        assert_eq!(subject, 9);
        let mut st = DurableState::new();
        st.apply(&wal);
        let back = location_from_stored(Key(9), st.records.get(&9).unwrap());
        assert_eq!(back, rec);
    }
}
