//! Non-member-only dissemination trees (the rejected design of §2.3).
//!
//! The paper contrasts its member-only LDT with a Scribe/IP-multicast-like
//! alternative that organizes the tree "by utilizing the nodes along the
//! routes from the leaves to the root": interested nodes are the leaves,
//! and every overlay node on the route from a leaf to the root is drafted
//! into the tree as a *non-member helper*. Each helper must then hold
//! location state for the tree's mobile node, which is what blows the
//! per-stationary-node responsibility up from `M/(N−M)·log N` to
//! `M/(N−M)·log² N` (Figure 3).
//!
//! We implement the design faithfully so Figure 3 can be reproduced as a
//! *measured* experiment, not just an analytic plot.

use std::collections::{HashMap, HashSet};

use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::DistanceCache;
use bristle_overlay::key::Key;
use bristle_overlay::meter::Meter;
use bristle_overlay::ring::{RingDht, RingError};

/// A materialized non-member-only dissemination tree.
#[derive(Debug, Clone)]
pub struct NonMemberTree {
    /// The mobile node whose movement the tree disseminates.
    pub root: Key,
    /// The interested (leaf) members.
    pub members: Vec<Key>,
    /// Every node participating in the tree (root, members, helpers).
    pub participants: HashSet<Key>,
    /// Participants that never asked to be involved: interior overlay
    /// nodes drafted from the routes.
    pub helpers: HashSet<Key>,
    /// Directed edges `(child, parent)` pointing toward the root.
    pub edges: HashSet<(Key, Key)>,
}

impl NonMemberTree {
    /// Builds the tree from the union of overlay routes member → root.
    pub fn build<V>(
        dht: &RingDht<V>,
        root: Key,
        members: &[Key],
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
    ) -> Result<NonMemberTree, RingError> {
        let mut participants: HashSet<Key> = HashSet::new();
        let mut edges: HashSet<(Key, Key)> = HashSet::new();
        participants.insert(root);
        let mut scratch = Meter::new();
        for &m in members {
            participants.insert(m);
            let route = dht.route(m, root, attachments, dcache, &mut scratch)?;
            let mut prev = m;
            for &hop in &route.hops {
                // Edge child → parent: traffic flows root-ward on reverse
                // routes, so the member-side node is the child.
                edges.insert((prev, hop));
                participants.insert(hop);
                prev = hop;
                if hop == root {
                    break;
                }
            }
            // The owner of the root key terminates the route; attach it to
            // the root if they differ (the root key's owner stores for it).
            if prev != root {
                edges.insert((prev, root));
            }
        }
        let member_set: HashSet<Key> = members.iter().copied().collect();
        let helpers = participants
            .iter()
            .copied()
            .filter(|k| *k != root && !member_set.contains(k))
            .collect();
        Ok(NonMemberTree { root, members: members.to_vec(), participants, helpers, edges })
    }

    /// Total nodes drafted into the tree — the paper's `S(τ)`.
    pub fn size(&self) -> usize {
        self.participants.len()
    }

    /// Number of unwilling helpers.
    pub fn helper_count(&self) -> usize {
        self.helpers.len()
    }
}

/// Counts, for every node, in how many of the given trees it serves as a
/// helper — the raw material of the measured Figure 3 responsibility.
pub fn helper_load(trees: &[NonMemberTree]) -> HashMap<Key, usize> {
    let mut load: HashMap<Key, usize> = HashMap::new();
    for t in trees {
        for &h in &t.helpers {
            *load.entry(h).or_default() += 1;
        }
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;
    use bristle_netsim::rng::Pcg64;
    use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
    use bristle_overlay::config::RingConfig;
    use std::sync::Arc;

    fn setup(n: usize, seed: u64) -> (RingDht<()>, AttachmentMap, DistanceCache, Pcg64) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let topo = TransitStubTopology::generate(&TransitStubConfig::tiny(), &mut rng);
        let stubs = topo.stub_routers().to_vec();
        let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 256);
        let mut attachments = AttachmentMap::new();
        let mut dht = RingDht::new(RingConfig::tornado());
        for _ in 0..n {
            let host = attachments.attach_new(*rng.choose(&stubs));
            dht.insert(Key::random(&mut rng), host, 1).unwrap();
        }
        dht.build_all_tables(&attachments, &dcache, &mut rng);
        (dht, attachments, dcache, rng)
    }

    #[test]
    fn tree_contains_all_members_and_root() {
        let (dht, attachments, dcache, _rng) = setup(128, 1);
        let keys: Vec<Key> = dht.keys().collect();
        let root = keys[0];
        let members: Vec<Key> = (1..=10).map(|i| keys[i * 7]).collect();
        let tree = NonMemberTree::build(&dht, root, &members, &attachments, &dcache).unwrap();
        assert!(tree.participants.contains(&root));
        for m in &members {
            assert!(tree.participants.contains(m));
        }
        // With scrambled membership, routes are long enough to draft
        // helpers on a 128-node overlay.
        assert!(tree.helper_count() > 0, "expected interior helpers");
    }

    #[test]
    fn helpers_are_disjoint_from_members() {
        let (dht, attachments, dcache, _) = setup(96, 2);
        let keys: Vec<Key> = dht.keys().collect();
        let members: Vec<Key> = keys.iter().copied().skip(1).step_by(9).collect();
        let tree = NonMemberTree::build(&dht, keys[0], &members, &attachments, &dcache).unwrap();
        for h in &tree.helpers {
            assert!(!members.contains(h));
            assert_ne!(*h, keys[0]);
        }
        assert_eq!(tree.size(), tree.helpers.len() + tree.members.len() + 1);
    }

    #[test]
    fn non_member_tree_larger_than_membership() {
        // The whole point of Fig. 3: S(τ) ≫ |members| + 1.
        let (dht, attachments, dcache, _) = setup(256, 3);
        let keys: Vec<Key> = dht.keys().collect();
        let members: Vec<Key> = keys.iter().copied().skip(1).step_by(17).collect();
        let tree = NonMemberTree::build(&dht, keys[0], &members, &attachments, &dcache).unwrap();
        assert!(
            tree.size() as f64 >= (members.len() + 1) as f64 * 1.5,
            "size {} members {}",
            tree.size(),
            members.len()
        );
    }

    #[test]
    fn helper_load_accumulates_across_trees() {
        let (dht, attachments, dcache, _) = setup(128, 4);
        let keys: Vec<Key> = dht.keys().collect();
        let mut trees = Vec::new();
        for r in 0..8 {
            let root = keys[r];
            let members: Vec<Key> = keys.iter().copied().skip(r + 1).step_by(11).take(8).collect();
            trees.push(NonMemberTree::build(&dht, root, &members, &attachments, &dcache).unwrap());
        }
        let load = helper_load(&trees);
        let total: usize = load.values().sum();
        let expected: usize = trees.iter().map(|t| t.helper_count()).sum();
        assert_eq!(total, expected);
        assert!(load.values().any(|&c| c >= 1));
    }

    #[test]
    fn empty_membership_tree_is_just_root() {
        let (dht, attachments, dcache, _) = setup(32, 5);
        let root = dht.keys().next().unwrap();
        let tree = NonMemberTree::build(&dht, root, &[], &attachments, &dcache).unwrap();
        assert_eq!(tree.size(), 1);
        assert_eq!(tree.helper_count(), 0);
        assert!(tree.edges.is_empty());
    }
}
