//! Error types for Bristle operations.

use bristle_overlay::key::Key;
use bristle_overlay::ring::RingError;

/// Errors surfaced by the Bristle public API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BristleError {
    /// The underlying overlay rejected the operation.
    Overlay(RingError),
    /// The referenced node is not part of this Bristle system.
    UnknownNode(Key),
    /// The operation requires a mobile node but the key names a
    /// stationary one.
    NotMobile(Key),
    /// The operation requires a stationary node but the key names a
    /// mobile one.
    NotStationary(Key),
    /// The stationary layer has no nodes, so location management is
    /// impossible.
    NoStationaryLayer,
    /// A key assignment collided too many times (the key space region for
    /// this mobility class is exhausted or the RNG is stuck).
    KeySpaceExhausted,
}

impl From<RingError> for BristleError {
    fn from(e: RingError) -> Self {
        BristleError::Overlay(e)
    }
}

impl std::fmt::Display for BristleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BristleError::Overlay(e) => write!(f, "overlay error: {e}"),
            BristleError::UnknownNode(k) => write!(f, "unknown Bristle node {k}"),
            BristleError::NotMobile(k) => write!(f, "node {k} is not mobile"),
            BristleError::NotStationary(k) => write!(f, "node {k} is not stationary"),
            BristleError::NoStationaryLayer => write!(f, "no stationary nodes available"),
            BristleError::KeySpaceExhausted => write!(f, "could not draw a fresh key"),
        }
    }
}

impl std::error::Error for BristleError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, BristleError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BristleError::UnknownNode(Key(5));
        assert!(e.to_string().contains("unknown"));
        let e: BristleError = RingError::Empty.into();
        assert!(matches!(e, BristleError::Overlay(RingError::Empty)));
        assert!(e.to_string().contains("overlay"));
    }
}
