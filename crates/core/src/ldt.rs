//! Location dissemination trees (member-only LDTs, paper §2.3).
//!
//! Every mobile node Y is associated with an LDT whose membership is Y
//! plus its registrants R(Y). When Y moves, its new address flows down the
//! tree: Y sends to the heads chosen by the Figure 4 advertisement
//! algorithm, each head forwards to the heads of its delegated sublist,
//! and so on. The tree is therefore *not* stored anywhere — it is the
//! trace of the recursive advertisement — but materializing it lets the
//! simulator measure exactly what the paper measures: depth and level
//! distribution (Fig. 8a), per-member assignment (Fig. 8b), and per-edge
//! physical cost (Fig. 9).

use bristle_overlay::key::Key;

use crate::advertise::{plan_advertisement, AdvertiseStep};
use crate::registry::Registrant;

/// One node of a materialized LDT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdtNode {
    /// The member's hash key.
    pub key: Key,
    /// The capacity it reported at registration.
    pub capacity: u32,
    /// Tree level; the root is level 1 (paper Fig. 8a's convention).
    pub level: u32,
    /// Index of the parent in [`Ldt::nodes`], `None` for the root.
    pub parent: Option<u32>,
    /// Number of members in the partition this node was handed (head
    /// included) — Fig. 8(b)'s "number of nodes assigned". For the root
    /// this is the full registrant count.
    pub assigned: usize,
}

/// A materialized member-only location dissemination tree.
///
/// # Examples
///
/// ```
/// use bristle_core::ldt::Ldt;
/// use bristle_core::registry::Registrant;
/// use bristle_overlay::key::Key;
///
/// let root = Registrant::new(Key(0), 8);
/// let members: Vec<Registrant> =
///     (1..=8).map(|i| Registrant::new(Key(i), 8)).collect();
///
/// // Idle, capable members → a wide, shallow tree.
/// let tree = Ldt::build(root, &members, |_| 0, 1);
/// assert_eq!(tree.len(), 9);
/// assert_eq!(tree.depth(), 2);
///
/// // The same members fully loaded → Fig. 8(a)'s degenerate chain.
/// let busy = Ldt::build(root, &members, |_| 8, 1);
/// assert_eq!(busy.depth(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct Ldt {
    nodes: Vec<LdtNode>,
}

impl Ldt {
    /// Builds the LDT for `root` (the mobile node, with its own capacity)
    /// over its registrants, using per-node workloads `used` and message
    /// unit cost `unit_cost` (Fig. 4's `v`).
    pub fn build(
        root: Registrant,
        registrants: &[Registrant],
        mut used: impl FnMut(Key) -> u32,
        unit_cost: u32,
    ) -> Ldt {
        let mut nodes = vec![LdtNode {
            key: root.key,
            capacity: root.capacity,
            level: 1,
            parent: None,
            assigned: registrants.len(),
        }];
        // Work stack of (parent index, list that parent must cover).
        let mut stack: Vec<(u32, Vec<Registrant>)> = vec![(0, registrants.to_vec())];
        while let Some((parent_idx, list)) = stack.pop() {
            if list.is_empty() {
                continue;
            }
            let parent = nodes[parent_idx as usize];
            let avail = parent.capacity.saturating_sub(used(parent.key));
            let steps: Vec<AdvertiseStep> = plan_advertisement(&list, avail, unit_cost);
            for step in steps {
                let child = LdtNode {
                    key: step.head.key,
                    capacity: step.head.capacity,
                    level: parent.level + 1,
                    parent: Some(parent_idx),
                    assigned: step.partition_size(),
                };
                nodes.push(child);
                let child_idx = (nodes.len() - 1) as u32;
                stack.push((child_idx, step.delegated));
            }
        }
        Ldt { nodes }
    }

    /// All tree nodes; index 0 is the root.
    pub fn nodes(&self) -> &[LdtNode] {
        &self.nodes
    }

    /// The root node (the mobile node the tree belongs to).
    pub fn root(&self) -> &LdtNode {
        &self.nodes[0]
    }

    /// Total members (root + registrants).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The deepest level present (root-only trees have depth 1).
    pub fn depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(1)
    }

    /// Members per level, `histogram[l - 1]` = number of level-`l` nodes.
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.depth() as usize];
        for n in &self.nodes {
            hist[(n.level - 1) as usize] += 1;
        }
        hist
    }

    /// Iterates the tree's `(parent key, child key)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (Key, Key)> + '_ {
        self.nodes.iter().filter_map(move |n| n.parent.map(|p| (self.nodes[p as usize].key, n.key)))
    }

    /// Number of edges (= members − 1).
    pub fn edge_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Sums `cost(parent, child)` over all edges; returns `(total, edges)`.
    ///
    /// The paper's Fig. 9 metric feeds the physical shortest-path weight
    /// between the two members' attachment routers in here.
    pub fn edge_cost_sum(&self, mut cost: impl FnMut(Key, Key) -> u64) -> (u64, usize) {
        let mut total = 0u64;
        let mut count = 0usize;
        for (p, c) in self.edges() {
            total += cost(p, c);
            count += 1;
        }
        (total, count)
    }

    /// Looks a member up by key.
    pub fn member(&self, key: Key) -> Option<&LdtNode> {
        self.nodes.iter().find(|n| n.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs(caps: &[u32]) -> Vec<Registrant> {
        // Keys 1.. to keep the root key (0) distinct.
        caps.iter().enumerate().map(|(i, &c)| Registrant::new(Key(1 + i as u64), c)).collect()
    }

    fn root(cap: u32) -> Registrant {
        Registrant::new(Key(0), cap)
    }

    #[test]
    fn tree_covers_every_registrant_exactly_once() {
        let members = regs(&[3, 7, 1, 9, 4, 4, 2, 8, 6, 5]);
        let tree = Ldt::build(root(5), &members, |_| 0, 1);
        assert_eq!(tree.len(), members.len() + 1);
        let mut keys: Vec<Key> = tree.nodes().iter().map(|n| n.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), tree.len(), "no duplicates");
        for m in &members {
            assert!(tree.member(m.key).is_some());
        }
    }

    #[test]
    fn unit_capacity_everywhere_degenerates_to_chain() {
        // Avail − v ≤ 0 at every node → each node hands everything to one
        // head → a chain of depth |R| + 1 (paper Fig. 8a at MAX = 1).
        let members = regs(&[1; 8]);
        let tree = Ldt::build(root(1), &members, |_| 0, 1);
        assert_eq!(tree.depth(), 9);
        assert_eq!(tree.level_histogram(), vec![1; 9]);
    }

    #[test]
    fn high_capacity_gives_shallow_tree() {
        let members = regs(&[15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1]);
        let tree = Ldt::build(root(15), &members, |_| 0, 1);
        // Root fans out 15 ways directly: depth 2.
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.level_histogram(), vec![1, 15]);
    }

    #[test]
    fn mixed_capacity_depth_between_extremes() {
        let members = regs(&[4, 4, 4, 4, 1, 1, 1, 1, 1, 1, 1, 1]);
        let tree = Ldt::build(root(4), &members, |_| 0, 1);
        let d = tree.depth();
        assert!(d > 2 && d < 13, "depth {d}");
    }

    #[test]
    fn workload_lengthens_tree() {
        let members = regs(&[8, 8, 8, 8, 8, 8, 8, 8]);
        let free = Ldt::build(root(8), &members, |_| 0, 1);
        let busy = Ldt::build(root(8), &members, |_| 7, 1);
        assert!(busy.depth() > free.depth(), "busy {} vs free {}", busy.depth(), free.depth());
    }

    #[test]
    fn levels_are_parent_plus_one() {
        let members = regs(&[5, 3, 8, 2, 9, 1, 7]);
        let tree = Ldt::build(root(3), &members, |_| 0, 1);
        for n in tree.nodes() {
            match n.parent {
                None => assert_eq!(n.level, 1),
                Some(p) => assert_eq!(n.level, tree.nodes()[p as usize].level + 1),
            }
        }
    }

    #[test]
    fn edges_connect_all_members() {
        let members = regs(&[5, 3, 8, 2, 9, 1, 7]);
        let tree = Ldt::build(root(3), &members, |_| 0, 1);
        assert_eq!(tree.edge_count(), members.len());
        // Every non-root node appears exactly once as a child.
        let mut children: Vec<Key> = tree.edges().map(|(_, c)| c).collect();
        children.sort_unstable();
        children.dedup();
        assert_eq!(children.len(), members.len());
    }

    #[test]
    fn edge_cost_sum_accumulates() {
        let members = regs(&[2, 2, 2]);
        let tree = Ldt::build(root(10), &members, |_| 0, 1);
        let (total, count) = tree.edge_cost_sum(|_, _| 7);
        assert_eq!(count, 3);
        assert_eq!(total, 21);
    }

    #[test]
    fn empty_registrants_root_only() {
        let tree = Ldt::build(root(5), &[], |_| 0, 1);
        assert!(tree.is_empty());
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.edge_count(), 0);
        assert_eq!(tree.root().assigned, 0);
    }

    #[test]
    fn heads_have_higher_capacity_than_delegated_on_average() {
        // The algorithm routes dissemination work through capable nodes:
        // average capacity must not increase with depth.
        let caps: Vec<u32> = (1..=15).collect();
        let members = regs(&caps);
        let tree = Ldt::build(root(6), &members, |_| 0, 1);
        let hist = tree.level_histogram();
        if hist.len() >= 3 {
            let avg_at = |lvl: u32| {
                let v: Vec<u32> = tree
                    .nodes()
                    .iter()
                    .filter(|n| n.level == lvl && n.parent.is_some())
                    .map(|n| n.capacity)
                    .collect();
                v.iter().sum::<u32>() as f64 / v.len() as f64
            };
            assert!(avg_at(2) >= avg_at(tree.depth()), "capable nodes sit higher");
        }
    }
}
