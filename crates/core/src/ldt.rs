//! Location dissemination trees (member-only LDTs, paper §2.3).
//!
//! Every mobile node Y is associated with an LDT whose membership is Y
//! plus its registrants R(Y). When Y moves, its new address flows down the
//! tree: Y sends to the heads chosen by the Figure 4 advertisement
//! algorithm, each head forwards to the heads of its delegated sublist,
//! and so on. The tree is therefore *not* stored anywhere — it is the
//! trace of the recursive advertisement — but materializing it lets the
//! simulator measure exactly what the paper measures: depth and level
//! distribution (Fig. 8a), per-member assignment (Fig. 8b), and per-edge
//! physical cost (Fig. 9).

use bristle_overlay::key::Key;

use crate::advertise::{plan_advertisement, AdvertiseStep};
use crate::registry::Registrant;

/// One node of a materialized LDT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdtNode {
    /// The member's hash key.
    pub key: Key,
    /// The capacity it reported at registration.
    pub capacity: u32,
    /// Tree level; the root is level 1 (paper Fig. 8a's convention).
    pub level: u32,
    /// Index of the parent in [`Ldt::nodes`], `None` for the root.
    pub parent: Option<u32>,
    /// Number of members in the partition this node was handed (head
    /// included) — Fig. 8(b)'s "number of nodes assigned". For the root
    /// this is the full registrant count.
    pub assigned: usize,
}

/// A materialized member-only location dissemination tree.
///
/// # Examples
///
/// ```
/// use bristle_core::ldt::Ldt;
/// use bristle_core::registry::Registrant;
/// use bristle_overlay::key::Key;
///
/// let root = Registrant::new(Key(0), 8);
/// let members: Vec<Registrant> =
///     (1..=8).map(|i| Registrant::new(Key(i), 8)).collect();
///
/// // Idle, capable members → a wide, shallow tree.
/// let tree = Ldt::build(root, &members, |_| 0, 1);
/// assert_eq!(tree.len(), 9);
/// assert_eq!(tree.depth(), 2);
///
/// // The same members fully loaded → Fig. 8(a)'s degenerate chain.
/// let busy = Ldt::build(root, &members, |_| 8, 1);
/// assert_eq!(busy.depth(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct Ldt {
    nodes: Vec<LdtNode>,
}

impl Ldt {
    /// Builds the LDT for `root` (the mobile node, with its own capacity)
    /// over its registrants, using per-node workloads `used` and message
    /// unit cost `unit_cost` (Fig. 4's `v`).
    pub fn build(
        root: Registrant,
        registrants: &[Registrant],
        mut used: impl FnMut(Key) -> u32,
        unit_cost: u32,
    ) -> Ldt {
        let mut nodes = vec![LdtNode {
            key: root.key,
            capacity: root.capacity,
            level: 1,
            parent: None,
            assigned: registrants.len(),
        }];
        // Work stack of (parent index, list that parent must cover).
        let mut stack: Vec<(u32, Vec<Registrant>)> = vec![(0, registrants.to_vec())];
        while let Some((parent_idx, list)) = stack.pop() {
            if list.is_empty() {
                continue;
            }
            let parent = nodes[parent_idx as usize];
            let avail = parent.capacity.saturating_sub(used(parent.key));
            let steps: Vec<AdvertiseStep> = plan_advertisement(&list, avail, unit_cost);
            for step in steps {
                let child = LdtNode {
                    key: step.head.key,
                    capacity: step.head.capacity,
                    level: parent.level + 1,
                    parent: Some(parent_idx),
                    assigned: step.partition_size(),
                };
                nodes.push(child);
                let child_idx = (nodes.len() - 1) as u32;
                stack.push((child_idx, step.delegated));
            }
        }
        Ldt { nodes }
    }

    /// All tree nodes; index 0 is the root.
    pub fn nodes(&self) -> &[LdtNode] {
        &self.nodes
    }

    /// The root node (the mobile node the tree belongs to).
    pub fn root(&self) -> &LdtNode {
        &self.nodes[0]
    }

    /// Total members (root + registrants).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The deepest level present (root-only trees have depth 1).
    pub fn depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(1)
    }

    /// Members per level, `histogram[l - 1]` = number of level-`l` nodes.
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.depth() as usize];
        for n in &self.nodes {
            hist[(n.level - 1) as usize] += 1;
        }
        hist
    }

    /// Iterates the tree's `(parent key, child key)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (Key, Key)> + '_ {
        self.nodes.iter().filter_map(move |n| n.parent.map(|p| (self.nodes[p as usize].key, n.key)))
    }

    /// Number of edges (= members − 1).
    pub fn edge_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Sums `cost(parent, child)` over all edges; returns `(total, edges)`.
    ///
    /// The paper's Fig. 9 metric feeds the physical shortest-path weight
    /// between the two members' attachment routers in here.
    pub fn edge_cost_sum(&self, mut cost: impl FnMut(Key, Key) -> u64) -> (u64, usize) {
        let mut total = 0u64;
        let mut count = 0usize;
        for (p, c) in self.edges() {
            total += cost(p, c);
            count += 1;
        }
        (total, count)
    }

    /// Looks a member up by key.
    pub fn member(&self, key: Key) -> Option<&LdtNode> {
        self.nodes.iter().find(|n| n.key == key)
    }

    /// Whether `key` is a member of this tree.
    pub fn contains(&self, key: Key) -> bool {
        self.member(key).is_some()
    }

    /// Checks the dissemination invariant: index 0 is the unique root
    /// and every other member's parent chain terminates there (no
    /// orphans, no cycles, no out-of-range parents).
    pub fn all_reachable_from_root(&self) -> bool {
        if self.nodes.is_empty() || self.nodes[0].parent.is_some() {
            return false;
        }
        for i in 1..self.nodes.len() {
            let mut cur = i;
            let mut steps = 0usize;
            while let Some(p) = self.nodes[cur].parent {
                cur = p as usize;
                if cur >= self.nodes.len() {
                    return false;
                }
                steps += 1;
                if steps > self.nodes.len() {
                    return false; // cycle
                }
            }
            if cur != 0 {
                return false;
            }
        }
        true
    }

    /// Removes the confirmed-dead member `dead` and re-grafts its
    /// orphaned subtree under `dead`'s parent via the same
    /// capacity-aware advertisement partitioning (Fig. 4) that built
    /// the tree, so the repair keeps capable survivors near the root.
    ///
    /// Returns `None` when `dead` is not a member or is the root (a
    /// dead root dissolves the whole tree — the caller handles that).
    /// On success every surviving member stays in the tree and
    /// [`Ldt::all_reachable_from_root`] holds again.
    pub fn heal(
        &mut self,
        dead: Key,
        mut used: impl FnMut(Key) -> u32,
        unit_cost: u32,
    ) -> Option<LdtHeal> {
        let dead_idx = self.nodes.iter().position(|n| n.key == dead)?;
        if dead_idx == 0 {
            return None;
        }
        // Mark the dead subtree in one forward pass (parents always
        // precede children in `nodes`, an invariant of the build loop
        // that the rebuild below preserves).
        let mut in_subtree = vec![false; self.nodes.len()];
        in_subtree[dead_idx] = true;
        for i in dead_idx + 1..self.nodes.len() {
            if let Some(p) = self.nodes[i].parent {
                in_subtree[i] = in_subtree[p as usize];
            }
        }
        let graft_idx = self.nodes[dead_idx].parent.expect("non-root has a parent") as usize;
        let orphans: Vec<Registrant> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|&(i, _)| in_subtree[i] && i != dead_idx)
            .map(|(_, n)| Registrant::new(n.key, n.capacity))
            .collect();

        // Rebuild the kept prefix with remapped parent indices. The
        // remap is monotone, so parent-precedes-child survives.
        let mut remap = vec![u32::MAX; self.nodes.len()];
        let mut kept: Vec<LdtNode> = Vec::with_capacity(self.nodes.len() - 1);
        for (i, n) in self.nodes.iter().enumerate() {
            if in_subtree[i] {
                continue;
            }
            remap[i] = kept.len() as u32;
            let mut node = *n;
            node.parent = n.parent.map(|p| remap[p as usize]);
            kept.push(node);
        }
        // Every kept ancestor of the graft point loses exactly one
        // member from its partition: the dead node (its orphaned
        // descendants re-attach below the same ancestors).
        let mut cur = Some(remap[graft_idx] as usize);
        while let Some(i) = cur {
            kept[i].assigned = kept[i].assigned.saturating_sub(1);
            cur = kept[i].parent.map(|p| p as usize);
        }
        self.nodes = kept;

        // Re-graft the orphans under the dead node's parent with the
        // same recursive partitioning the original build used.
        let report = LdtHeal {
            dead,
            orphans: orphans.len(),
            graft_parent: self.nodes[remap[graft_idx] as usize].key,
        };
        let mut stack: Vec<(u32, Vec<Registrant>)> = vec![(remap[graft_idx], orphans)];
        while let Some((parent_idx, list)) = stack.pop() {
            if list.is_empty() {
                continue;
            }
            let parent = self.nodes[parent_idx as usize];
            let avail = parent.capacity.saturating_sub(used(parent.key));
            for step in plan_advertisement(&list, avail, unit_cost) {
                let child = LdtNode {
                    key: step.head.key,
                    capacity: step.head.capacity,
                    level: parent.level + 1,
                    parent: Some(parent_idx),
                    assigned: step.partition_size(),
                };
                self.nodes.push(child);
                let child_idx = (self.nodes.len() - 1) as u32;
                stack.push((child_idx, step.delegated));
            }
        }
        Some(report)
    }
}

/// Outcome of one [`Ldt::heal`] repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdtHeal {
    /// The member that was removed.
    pub dead: Key,
    /// How many orphaned descendants were re-grafted.
    pub orphans: usize,
    /// The surviving member the orphans were re-attached under.
    pub graft_parent: Key,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs(caps: &[u32]) -> Vec<Registrant> {
        // Keys 1.. to keep the root key (0) distinct.
        caps.iter().enumerate().map(|(i, &c)| Registrant::new(Key(1 + i as u64), c)).collect()
    }

    fn root(cap: u32) -> Registrant {
        Registrant::new(Key(0), cap)
    }

    #[test]
    fn tree_covers_every_registrant_exactly_once() {
        let members = regs(&[3, 7, 1, 9, 4, 4, 2, 8, 6, 5]);
        let tree = Ldt::build(root(5), &members, |_| 0, 1);
        assert_eq!(tree.len(), members.len() + 1);
        let mut keys: Vec<Key> = tree.nodes().iter().map(|n| n.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), tree.len(), "no duplicates");
        for m in &members {
            assert!(tree.member(m.key).is_some());
        }
    }

    #[test]
    fn unit_capacity_everywhere_degenerates_to_chain() {
        // Avail − v ≤ 0 at every node → each node hands everything to one
        // head → a chain of depth |R| + 1 (paper Fig. 8a at MAX = 1).
        let members = regs(&[1; 8]);
        let tree = Ldt::build(root(1), &members, |_| 0, 1);
        assert_eq!(tree.depth(), 9);
        assert_eq!(tree.level_histogram(), vec![1; 9]);
    }

    #[test]
    fn high_capacity_gives_shallow_tree() {
        let members = regs(&[15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1]);
        let tree = Ldt::build(root(15), &members, |_| 0, 1);
        // Root fans out 15 ways directly: depth 2.
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.level_histogram(), vec![1, 15]);
    }

    #[test]
    fn mixed_capacity_depth_between_extremes() {
        let members = regs(&[4, 4, 4, 4, 1, 1, 1, 1, 1, 1, 1, 1]);
        let tree = Ldt::build(root(4), &members, |_| 0, 1);
        let d = tree.depth();
        assert!(d > 2 && d < 13, "depth {d}");
    }

    #[test]
    fn workload_lengthens_tree() {
        let members = regs(&[8, 8, 8, 8, 8, 8, 8, 8]);
        let free = Ldt::build(root(8), &members, |_| 0, 1);
        let busy = Ldt::build(root(8), &members, |_| 7, 1);
        assert!(busy.depth() > free.depth(), "busy {} vs free {}", busy.depth(), free.depth());
    }

    #[test]
    fn levels_are_parent_plus_one() {
        let members = regs(&[5, 3, 8, 2, 9, 1, 7]);
        let tree = Ldt::build(root(3), &members, |_| 0, 1);
        for n in tree.nodes() {
            match n.parent {
                None => assert_eq!(n.level, 1),
                Some(p) => assert_eq!(n.level, tree.nodes()[p as usize].level + 1),
            }
        }
    }

    #[test]
    fn edges_connect_all_members() {
        let members = regs(&[5, 3, 8, 2, 9, 1, 7]);
        let tree = Ldt::build(root(3), &members, |_| 0, 1);
        assert_eq!(tree.edge_count(), members.len());
        // Every non-root node appears exactly once as a child.
        let mut children: Vec<Key> = tree.edges().map(|(_, c)| c).collect();
        children.sort_unstable();
        children.dedup();
        assert_eq!(children.len(), members.len());
    }

    #[test]
    fn edge_cost_sum_accumulates() {
        let members = regs(&[2, 2, 2]);
        let tree = Ldt::build(root(10), &members, |_| 0, 1);
        let (total, count) = tree.edge_cost_sum(|_, _| 7);
        assert_eq!(count, 3);
        assert_eq!(total, 21);
    }

    #[test]
    fn empty_registrants_root_only() {
        let tree = Ldt::build(root(5), &[], |_| 0, 1);
        assert!(tree.is_empty());
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.edge_count(), 0);
        assert_eq!(tree.root().assigned, 0);
    }

    #[test]
    fn heads_have_higher_capacity_than_delegated_on_average() {
        // The algorithm routes dissemination work through capable nodes:
        // average capacity must not increase with depth.
        let caps: Vec<u32> = (1..=15).collect();
        let members = regs(&caps);
        let tree = Ldt::build(root(6), &members, |_| 0, 1);
        let hist = tree.level_histogram();
        if hist.len() >= 3 {
            let avg_at = |lvl: u32| {
                let v: Vec<u32> = tree
                    .nodes()
                    .iter()
                    .filter(|n| n.level == lvl && n.parent.is_some())
                    .map(|n| n.capacity)
                    .collect();
                v.iter().sum::<u32>() as f64 / v.len() as f64
            };
            assert!(avg_at(2) >= avg_at(tree.depth()), "capable nodes sit higher");
        }
    }

    #[test]
    fn heal_regrafts_orphans_and_keeps_everyone_reachable() {
        let members = regs(&[3, 7, 1, 9, 4, 4, 2, 8, 6, 5]);
        let mut tree = Ldt::build(root(2), &members, |_| 0, 1);
        assert!(tree.all_reachable_from_root());
        // Kill an interior member (one with children, if any exists;
        // otherwise any non-root member still exercises the path).
        let victim = tree
            .edges()
            .map(|(p, _)| p)
            .find(|&p| p != Key(0))
            .unwrap_or_else(|| tree.nodes()[1].key);
        let before_len = tree.len();
        let report = tree.heal(victim, |_| 0, 1).expect("member heals");
        assert_eq!(report.dead, victim);
        assert_eq!(tree.len(), before_len - 1);
        assert!(tree.member(victim).is_none(), "dead member removed");
        assert!(tree.all_reachable_from_root(), "repair restores the invariant");
        for m in &members {
            if m.key != victim {
                assert!(tree.contains(m.key), "survivor {:?} kept", m.key);
            }
        }
        // Levels still consistent after the re-graft.
        for n in tree.nodes() {
            match n.parent {
                None => assert_eq!(n.level, 1),
                Some(p) => assert_eq!(n.level, tree.nodes()[p as usize].level + 1),
            }
        }
        assert_eq!(tree.root().assigned, members.len() - 1, "root partition shrank by one");
    }

    #[test]
    fn heal_leaf_has_no_orphans() {
        let members = regs(&[5, 5, 5]);
        let mut tree = Ldt::build(root(8), &members, |_| 0, 1);
        let leaf = tree
            .nodes()
            .iter()
            .map(|n| n.key)
            .find(|&k| k != Key(0) && tree.edges().all(|(p, _)| p != k))
            .expect("a leaf exists");
        let report = tree.heal(leaf, |_| 0, 1).expect("leaf heals");
        assert_eq!(report.orphans, 0);
        assert!(tree.all_reachable_from_root());
    }

    #[test]
    fn heal_root_or_stranger_is_refused() {
        let members = regs(&[5, 5]);
        let mut tree = Ldt::build(root(8), &members, |_| 0, 1);
        assert_eq!(tree.heal(Key(0), |_| 0, 1), None, "a dead root dissolves the tree");
        assert_eq!(tree.heal(Key(999), |_| 0, 1), None, "not a member");
        assert_eq!(tree.len(), 3, "refused heals change nothing");
    }

    #[test]
    fn heal_chain_interior_reattaches_deep_subtree() {
        // Unit capacities force a chain; killing the second link orphans
        // the entire tail, which must re-graft under the root.
        let members = regs(&[1; 6]);
        let mut tree = Ldt::build(root(1), &members, |_| 0, 1);
        assert_eq!(tree.depth(), 7);
        let second = tree.nodes().iter().find(|n| n.level == 2).expect("chain link").key;
        let report = tree.heal(second, |_| 0, 1).expect("heals");
        assert_eq!(report.orphans, 5, "the whole tail was orphaned");
        assert_eq!(report.graft_parent, Key(0));
        assert!(tree.all_reachable_from_root());
        assert_eq!(tree.len(), 6);
        assert_eq!(tree.depth(), 6, "chain re-forms one link shorter");
    }
}
