//! Analytic models from the paper.
//!
//! These closed-form expressions back two things: the paper's **Figure 3**
//! (per-stationary-node *responsibility* under member-only vs
//! non-member-only LDTs, plotted for N = 2^20) and the asymptotic claims
//! the measured experiments are checked against (route hops, LDT depth,
//! registration counts).

/// Natural parameters of a Bristle deployment used by the models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Population {
    /// Total nodes N.
    pub n: f64,
    /// Mobile nodes M (< N).
    pub m: f64,
}

impl Population {
    /// Builds a population; panics unless `0 <= m < n` and `n > 1`.
    pub fn new(n: f64, m: f64) -> Population {
        assert!(n > 1.0, "need n > 1");
        assert!((0.0..n).contains(&m), "need 0 <= m < n");
        Population { n, m }
    }

    /// The mobile fraction M/N.
    pub fn mobile_fraction(&self) -> f64 {
        self.m / self.n
    }

    /// log₂ N — the per-node state size scale of the HS-P2P.
    pub fn log_n(&self) -> f64 {
        self.n.log2()
    }
}

/// Per-stationary-node responsibility under the **member-only** LDT
/// design: `M/(N−M) × log N` (paper §2.3).
pub fn member_only_responsibility(p: Population) -> f64 {
    if p.m == 0.0 {
        return 0.0;
    }
    p.m / (p.n - p.m) * p.log_n()
}

/// Per-stationary-node responsibility under the **non-member-only**
/// (Scribe-like) LDT design: `M/(N−M) × (log N)²` (paper §2.3).
pub fn non_member_responsibility(p: Population) -> f64 {
    if p.m == 0.0 {
        return 0.0;
    }
    p.m / (p.n - p.m) * p.log_n() * p.log_n()
}

/// Expected registrations issued per mobile node: `(M/N) × log N`
/// (§2.3.1), i.e. the expected LDT membership size.
pub fn registrations_per_mobile(p: Population) -> f64 {
    p.mobile_fraction() * p.log_n()
}

/// Expected application-level hops for a route in a base-`b` HS-P2P of
/// `n` nodes: `log_b n` scaled by the expected fraction of non-trivial
/// digits `(b−1)/b` (the standard Plaxton/Pastry estimate).
pub fn expected_route_hops(n: f64, base: f64) -> f64 {
    assert!(base >= 2.0 && n >= 1.0);
    n.log2() / base.log2() * (base - 1.0) / base
}

/// Expected depth of a k-way-complete LDT over `members` registrants:
/// `O(log_k members)` — the paper's `O(log(log N))` dissemination bound
/// once `members = O(log N)`.
pub fn ldt_depth(members: f64, fanout: f64) -> f64 {
    assert!(fanout >= 2.0);
    if members <= 1.0 {
        return members.max(0.0);
    }
    members.log2() / fanout.log2()
}

/// Worst-case hops for a scrambled-naming route between stationary nodes:
/// every hop may traverse a mobile node needing a `_discovery`, giving
/// `log N × (1 + (M/N) × log(N−M))` expected hops (§3's O(log² N)).
pub fn scrambled_route_hops(p: Population, base: f64) -> f64 {
    let route = expected_route_hops(p.n, base);
    let discovery = expected_route_hops((p.n - p.m).max(2.0), base);
    route * (1.0 + p.mobile_fraction() * discovery)
}

/// Expected hops for a clustered-naming route between stationary nodes:
/// no discoveries while ∇ ≥ 1/2, degrading gracefully after the knee.
pub fn clustered_route_hops(p: Population, base: f64) -> f64 {
    let route = expected_route_hops(p.n, base);
    let f = p.mobile_fraction();
    if f <= 0.5 {
        route
    } else {
        // Past the knee a fraction (2f − 1) of worst-case wrapping routes
        // can touch the mobile band.
        let discovery = expected_route_hops((p.n - p.m).max(2.0), base);
        route * (1.0 + (2.0 * f - 1.0) * 0.5 * discovery)
    }
}

/// One row of the Figure 3 data set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponsibilityPoint {
    /// Mobile fraction M/N.
    pub mobile_fraction: f64,
    /// Member-only responsibility.
    pub member_only: f64,
    /// Non-member-only responsibility.
    pub non_member: f64,
}

/// Generates the Figure 3 series for a system of `n` nodes at the given
/// mobile fractions (the paper uses N = 1 048 576 and a linear M/N sweep).
pub fn figure3_series(n: f64, fractions: &[f64]) -> Vec<ResponsibilityPoint> {
    fractions
        .iter()
        .map(|&f| {
            assert!((0.0..1.0).contains(&f), "fraction {f} out of [0,1)");
            let p = Population::new(n, (n * f).min(n - 1.0));
            ResponsibilityPoint {
                mobile_fraction: f,
                member_only: member_only_responsibility(p),
                non_member: non_member_responsibility(p),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: f64 = 1_048_576.0; // 2^20, the paper's Figure 3 setting

    #[test]
    fn responsibility_ratio_is_log_n() {
        let p = Population::new(N, N * 0.5);
        let ratio = non_member_responsibility(p) / member_only_responsibility(p);
        assert!((ratio - 20.0).abs() < 1e-9, "log2(2^20) = 20, got {ratio}");
    }

    #[test]
    fn responsibility_grows_superlinearly_in_mobile_fraction() {
        // Doubling M/N from 0.4 to 0.8 must much more than double the
        // responsibility (the paper's "increases exponentially" remark).
        let r1 = non_member_responsibility(Population::new(N, N * 0.4));
        let r2 = non_member_responsibility(Population::new(N, N * 0.8));
        assert!(r2 > r1 * 4.0, "r1 {r1} r2 {r2}");
    }

    #[test]
    fn zero_mobile_means_zero_responsibility() {
        let p = Population::new(N, 0.0);
        assert_eq!(member_only_responsibility(p), 0.0);
        assert_eq!(non_member_responsibility(p), 0.0);
    }

    #[test]
    fn registrations_stay_below_log_n() {
        // O((M/N) log N) < O(log N) since M < N (§2.3.1).
        for f in [0.1, 0.5, 0.9] {
            let p = Population::new(N, N * f);
            assert!(registrations_per_mobile(p) < p.log_n());
        }
    }

    #[test]
    fn route_hops_match_paper_magnitudes() {
        // Base-4 routing over 2 000 nodes ≈ 4–6 hops (paper Fig. 7a at M=0).
        let h = expected_route_hops(2_000.0, 4.0);
        assert!((3.0..7.0).contains(&h), "{h}");
    }

    #[test]
    fn scrambled_exceeds_clustered_beyond_zero_mobility() {
        for f in [0.1, 0.3, 0.5, 0.7] {
            let p = Population::new(10_000.0, 10_000.0 * f);
            assert!(scrambled_route_hops(p, 4.0) > clustered_route_hops(p, 4.0));
        }
    }

    #[test]
    fn clustered_flat_until_knee() {
        let base = clustered_route_hops(Population::new(10_000.0, 0.0), 4.0);
        let at_half = clustered_route_hops(Population::new(10_000.0, 5_000.0), 4.0);
        let past = clustered_route_hops(Population::new(10_000.0, 7_000.0), 4.0);
        assert_eq!(base, at_half, "no penalty before the knee");
        assert!(past > at_half, "penalty after the knee");
    }

    #[test]
    fn ldt_depth_is_loglog() {
        // members = log2(2^20) = 20, fanout 4 → depth ≈ 2.16.
        let d = ldt_depth(20.0, 4.0);
        assert!((2.0..2.5).contains(&d), "{d}");
        assert_eq!(ldt_depth(1.0, 4.0), 1.0);
        assert_eq!(ldt_depth(0.0, 4.0), 0.0);
    }

    #[test]
    fn figure3_series_shape() {
        let fractions: Vec<f64> = (0..=9).map(|i| i as f64 / 10.0).collect();
        let series = figure3_series(N, &fractions);
        assert_eq!(series.len(), 10);
        for w in series.windows(2) {
            assert!(w[1].member_only >= w[0].member_only, "monotone");
            assert!(w[1].non_member >= w[0].non_member, "monotone");
        }
        for pt in &series[1..] {
            assert!(pt.non_member > pt.member_only * 15.0, "gap ≈ log N");
        }
    }

    #[test]
    #[should_panic(expected = "0 <= m < n")]
    fn population_rejects_all_mobile() {
        Population::new(100.0, 100.0);
    }
}
