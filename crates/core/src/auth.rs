//! Toy self-certifying identity and message authentication.
//!
//! Every related system binds overlay identity to key material (Molia's
//! Blake3-of-pubkey node IDs, saorsa's `PeerId = hash(pubkey)`); Bristle's
//! seed trusted every frame. This module supplies the *protocol* shape of
//! that binding — self-certifying IDs plus a deterministic MAC over the
//! frames that carry authority (location records, `Alive` refutations,
//! funeral withdrawals, lease grants) — with arithmetic stand-ins for the
//! cryptography so the workspace stays offline and dependency-free.
//!
//! The fiction, stated plainly (and again in DESIGN.md's threat model):
//!
//! * The "hash" [`AuthDomain::hash_id`] is an *invertible* 64-bit mixer.
//!   Real deployments would use a real hash; here invertibility is what
//!   lets pre-assigned overlay keys retroactively satisfy
//!   `hash_id(pubkey) == key` without changing key assignment (and hence
//!   without perturbing any seeded run). The modeled adversary is
//!   *protocol-level*: it forges, replays, floods and eclipses, but does
//!   not invert the hash or steal another node's signing secret.
//! * The "MAC" [`AuthDomain::sign`] mixes a per-node secret with a frame
//!   digest. Unforgeability holds only against the modeled adversary.
//!
//! An [`AuthDomain`] is the shared oracle of one deployment: honest nodes
//! reach it through their environment, which also models "the signature
//! travels with the record" — a relay re-seals a record *as its subject*,
//! standing in for forwarding the subject's original signature bytes.

use bristle_overlay::key::Key;

/// How strictly received frames are authenticated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyPolicy {
    /// No checks at all — the seed behavior, byte-identical traces.
    #[default]
    Off,
    /// Check every frame, meter failures, but accept and process anyway.
    LogOnly,
    /// Check every frame and drop failures before they touch state.
    Enforce,
}

impl VerifyPolicy {
    /// Short static name, for reports and CLI axes.
    pub const fn name(self) -> &'static str {
        match self {
            VerifyPolicy::Off => "off",
            VerifyPolicy::LogOnly => "log",
            VerifyPolicy::Enforce => "enforce",
        }
    }

    /// Parses a CLI axis value (the inverse of [`Self::name`]).
    pub fn from_arg(s: &str) -> Option<Self> {
        match s {
            "off" => Some(VerifyPolicy::Off),
            "log" | "log-only" => Some(VerifyPolicy::LogOnly),
            "enforce" => Some(VerifyPolicy::Enforce),
            _ => None,
        }
    }
}

/// The authentication trailer a wire frame carries: the signer's public
/// key (self-certifying: it must hash to the claimed signer's overlay
/// key) and the MAC over the frame body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireAuth {
    /// The signing node's public key.
    pub pubkey: u64,
    /// MAC over the frame body under the signer's secret.
    pub tag: u64,
}

/// Why a frame failed authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// An authenticated kind arrived with no trailer at all.
    MissingTag,
    /// The presented pubkey does not hash to the claimed signer's key.
    IdentityMismatch,
    /// The MAC does not verify under the claimed signer's key.
    BadTag,
    /// The signature is valid but the record is a replay of withdrawn
    /// state (its subject is confirmed dead).
    StaleRecord,
}

impl AuthError {
    /// Short static name, for traces and reports.
    pub const fn name(self) -> &'static str {
        match self {
            AuthError::MissingTag => "missing_tag",
            AuthError::IdentityMismatch => "identity_mismatch",
            AuthError::BadTag => "bad_tag",
            AuthError::StaleRecord => "stale_record",
        }
    }
}

/// splitmix64 finalizer: the module's stand-in for a hash function.
#[inline]
const fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Exact inverse of [`mix`] (the multiplier inverses mod 2⁶⁴).
#[inline]
const fn unmix(mut x: u64) -> u64 {
    x ^= (x >> 31) ^ (x >> 62);
    x = x.wrapping_mul(0x319642b2d24d8ec3);
    x ^= (x >> 27) ^ (x >> 54);
    x = x.wrapping_mul(0x96de1b173f119089);
    x ^= (x >> 30) ^ (x >> 60);
    x
}

/// FNV-1a over a byte slice: the frame-body digest the MAC covers.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One deployment's shared key-derivation oracle, seeded so every run is
/// deterministic. Cheap to copy (it is just the seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthDomain {
    seed: u64,
}

impl AuthDomain {
    /// A domain whose per-node secrets derive from `seed`.
    pub fn new(seed: u64) -> Self {
        AuthDomain { seed }
    }

    /// The public key whose hash is `key` — self-certification runs the
    /// derivation forward: `hash_id(pubkey_of(key)) == key` exactly.
    pub fn pubkey_of(key: Key) -> u64 {
        unmix(key.0)
    }

    /// The public "hash" binding a pubkey to an overlay identity.
    pub fn hash_id(pubkey: u64) -> Key {
        Key(mix(pubkey))
    }

    /// The signing secret of `key` in this domain. Private: the modeled
    /// adversary never obtains another node's secret.
    fn secret_of(self, key: Key) -> u64 {
        mix(key.0 ^ mix(self.seed ^ 0x5349_474e_5345_4544)) // "SIGNSEED"
    }

    /// Signs `digest` as `signer`: the trailer an authenticated frame
    /// carries on the wire.
    pub fn sign(self, signer: Key, digest: u64) -> WireAuth {
        WireAuth { pubkey: Self::pubkey_of(signer), tag: mix(self.secret_of(signer) ^ digest) }
    }

    /// Checks `auth` as a signature by `signer` over `digest`:
    /// self-certification first (the pubkey must hash to `signer`), then
    /// the MAC.
    pub fn verify(self, signer: Key, digest: u64, auth: WireAuth) -> Result<(), AuthError> {
        if Self::hash_id(auth.pubkey) != signer {
            return Err(AuthError::IdentityMismatch);
        }
        if auth.tag != mix(self.secret_of(signer) ^ digest) {
            return Err(AuthError::BadTag);
        }
        Ok(())
    }

    /// A tag that verifies for no digest under any signer this domain
    /// derives — what an adversary who never learned a secret produces.
    pub fn forged(signer: Key) -> WireAuth {
        WireAuth { pubkey: Self::pubkey_of(signer), tag: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmix_inverts_mix() {
        for x in [0u64, 1, 42, 0xdead_beef, u64::MAX, 0x8000_0000_0000_0001] {
            assert_eq!(unmix(mix(x)), x, "x={x:#x}");
            assert_eq!(mix(unmix(x)), x, "x={x:#x}");
        }
    }

    #[test]
    fn ids_are_self_certifying() {
        for k in [Key(0), Key(7), Key(u64::MAX), Key(0x1234_5678_9abc_def0)] {
            assert_eq!(AuthDomain::hash_id(AuthDomain::pubkey_of(k)), k);
        }
    }

    #[test]
    fn sign_verify_round_trip() {
        let d = AuthDomain::new(8);
        let auth = d.sign(Key(99), 0xfeed);
        assert_eq!(d.verify(Key(99), 0xfeed, auth), Ok(()));
    }

    #[test]
    fn wrong_digest_rejected() {
        let d = AuthDomain::new(8);
        let auth = d.sign(Key(99), 0xfeed);
        assert_eq!(d.verify(Key(99), 0xfeee, auth), Err(AuthError::BadTag));
    }

    #[test]
    fn wrong_signer_rejected_as_identity_mismatch() {
        let d = AuthDomain::new(8);
        let auth = d.sign(Key(99), 0xfeed);
        assert_eq!(d.verify(Key(100), 0xfeed, auth), Err(AuthError::IdentityMismatch));
    }

    #[test]
    fn stolen_pubkey_without_secret_fails_the_mac() {
        // The pubkey derivation is public — a Sybil can always present a
        // pubkey that certifies any identity. The MAC is the gate.
        let d = AuthDomain::new(8);
        let forged = AuthDomain::forged(Key(99));
        assert_eq!(d.verify(Key(99), 0xfeed, forged), Err(AuthError::BadTag));
    }

    #[test]
    fn domains_with_different_seeds_disagree() {
        let a = AuthDomain::new(1);
        let b = AuthDomain::new(2);
        let auth = a.sign(Key(5), 77);
        assert_eq!(b.verify(Key(5), 77, auth), Err(AuthError::BadTag));
    }

    #[test]
    fn fnv_digest_is_position_sensitive() {
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
        assert_ne!(fnv1a64(b""), fnv1a64(b"\0"));
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [VerifyPolicy::Off, VerifyPolicy::LogOnly, VerifyPolicy::Enforce] {
            assert_eq!(VerifyPolicy::from_arg(p.name()), Some(p));
        }
        assert_eq!(VerifyPolicy::from_arg("nonsense"), None);
        assert_eq!(VerifyPolicy::default(), VerifyPolicy::Off);
    }
}
