//! System-wide observability: one snapshot struct answering the
//! scalability questions the paper's Table 1 asks (state per node,
//! registration load, repository size, traffic so far).

use crate::system::BristleSystem;

/// A point-in-time summary of a [`BristleSystem`].
#[derive(Debug, Clone, PartialEq)]
pub struct SystemStats {
    /// Total nodes.
    pub nodes: usize,
    /// Stationary nodes.
    pub stationary: usize,
    /// Mobile nodes.
    pub mobile: usize,
    /// Routing-state rows in the mobile layer.
    pub mobile_state_rows: usize,
    /// Routing-state rows in the stationary layer.
    pub stationary_state_rows: usize,
    /// Mean routing-state rows per node (both layers combined).
    pub avg_state_per_node: f64,
    /// Location records stored across the stationary layer (replicas
    /// counted individually).
    pub location_records: usize,
    /// Location records whose TTL has lapsed (cleanup candidates).
    pub expired_records: usize,
    /// Lease contracts currently tracked (valid or pending purge).
    pub leases: usize,
    /// Registration entries across all targets.
    pub registrations: usize,
    /// Mean registrants per mobile node (the LDT membership scale).
    pub avg_registrants_per_mobile: f64,
    /// Protocol messages sent since system construction.
    pub total_messages: u64,
    /// Physical cost of those messages.
    pub total_message_cost: u64,
    /// Physical moves performed so far.
    pub total_moves: u64,
}

impl BristleSystem {
    /// Takes a statistics snapshot.
    pub fn stats(&self) -> SystemStats {
        let now = self.clock.now();
        let mut location_records = 0usize;
        let mut expired_records = 0usize;
        for node in self.stationary.iter() {
            for rec in node.store.values() {
                location_records += 1;
                if rec.is_expired(now) {
                    expired_records += 1;
                }
            }
        }
        let mobile_state_rows = self.mobile.total_state();
        let stationary_state_rows = self.stationary.total_state();
        let nodes = self.len();
        let mobile = self.mobile_keys().len();
        let registrations = self.registry.total_registrations();
        SystemStats {
            nodes,
            stationary: self.stationary_keys().len(),
            mobile,
            mobile_state_rows,
            stationary_state_rows,
            avg_state_per_node: if nodes == 0 {
                0.0
            } else {
                (mobile_state_rows + stationary_state_rows) as f64 / nodes as f64
            },
            location_records,
            expired_records,
            leases: self.leases.len(),
            registrations,
            avg_registrants_per_mobile: if mobile == 0 {
                0.0
            } else {
                registrations as f64 / mobile as f64
            },
            total_messages: self.meter.total_messages(),
            total_message_cost: self.meter.total_cost(),
            total_moves: self.attachments.total_moves(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::system::BristleBuilder;
    use bristle_netsim::transit_stub::TransitStubConfig;

    fn system(seed: u64) -> crate::system::BristleSystem {
        BristleBuilder::new(seed)
            .stationary_nodes(30)
            .mobile_nodes(15)
            .topology(TransitStubConfig::tiny())
            .build()
            .unwrap()
    }

    #[test]
    fn snapshot_reflects_population() {
        let sys = system(1);
        let s = sys.stats();
        assert_eq!(s.nodes, 45);
        assert_eq!(s.stationary, 30);
        assert_eq!(s.mobile, 15);
        assert!(s.avg_state_per_node > 4.0);
        // Every mobile node published k = 3 replicas.
        assert_eq!(s.location_records, 15 * sys.config().location_replicas);
        assert_eq!(s.expired_records, 0);
        assert!(s.avg_registrants_per_mobile > 2.0);
        assert_eq!(s.total_moves, 0);
    }

    #[test]
    fn snapshot_tracks_activity() {
        let mut sys = system(2);
        let before = sys.stats();
        let m = sys.mobile_keys()[0];
        sys.move_node(m, None).unwrap();
        let after = sys.stats();
        assert_eq!(after.total_moves, before.total_moves + 1);
        assert!(after.total_messages > before.total_messages);
        assert!(after.leases >= before.leases);
    }

    #[test]
    fn expiry_shows_up_after_ttl() {
        let mut sys = system(3);
        let ttl = sys.config().location_ttl;
        sys.tick(ttl + 1);
        let s = sys.stats();
        assert_eq!(s.expired_records, s.location_records, "all initial records lapsed");
    }
}
