//! Bristle node join and leave (paper §2.3.3, Figure 5).
//!
//! A joining node `i` routes a join message toward its own key; every
//! node `k` the message visits (a) adopts `i` into its state if `i`'s key
//! improves on an existing entry, and (b) offers `k` and `state[k]` back
//! to `i`, which adopts entries that are closer in key space *and*
//! physically nearer than what it already has (the network-proximity
//! check `distance(r, i) < distance(q, i)`).
//!
//! Registration bookkeeping follows §2.3.1's invariant — whoever ends up
//! holding a mobile node's state-pair registers to that node. (Fig. 5's
//! inline comments state the direction ambiguously; §2.3.1's definition
//! "X registers itself to nodes whose state-pairs are replicated in X" is
//! the consistent one and is what we implement.)
//!
//! This join costs the paper's 2 × O(log N) messages and produces the
//! same steady state the omniscient `rewire()` builds; the deliberately
//! redundant test `join_matches_omniscient_wiring` checks that.

use bristle_overlay::key::Key;
use bristle_overlay::meter::MessageKind;

use crate::durable::{self, WalRecord};
use crate::error::Result;
use crate::location::LocationRecord;
use crate::naming::Mobility;
use crate::registry::Registrant;
use crate::system::BristleSystem;

/// What a join accomplished.
#[derive(Debug, Clone)]
pub struct JoinReport {
    /// The key assigned to the new node.
    pub key: Key,
    /// Nodes visited by the join message.
    pub visited: Vec<Key>,
    /// Join-protocol messages sent (the paper's 2 × O(log N)).
    pub messages: u64,
}

impl BristleSystem {
    /// Admits a brand-new node of the given mobility class through the
    /// Figure 5 join protocol, bootstrapping via a random existing node.
    pub fn join_node(&mut self, mobility: Mobility) -> Result<JoinReport> {
        // Pick a bootstrap node before admitting, so the route is sampled
        // over the pre-join population.
        let bootstrap = {
            let keys: Vec<Key> = self.mobile.keys().collect();
            if keys.is_empty() {
                None
            } else {
                let idx = self.rng().index(keys.len());
                Some(keys[idx])
            }
        };
        let key = self.admit(mobility)?;

        let mut visited = Vec::new();
        let mut messages = 0u64;
        if let Some(boot) = bootstrap {
            // The join message travels toward the newcomer's key.
            let dcache = self.distances_arc();
            let route = self.mobile.route_as(
                boot,
                key,
                MessageKind::Join,
                &self.attachments,
                &dcache,
                &mut self.meter,
            )?;
            messages += route.hop_count() as u64;
            visited.push(boot);
            visited.extend(route.hops.iter().copied().filter(|&h| h != key));

            // (a) Visited nodes adopt the newcomer where it improves their
            // tables; (b) the newcomer assembles its own table from what
            // it saw. Rebuilding against the live map realizes exactly the
            // closer-key + closer-distance rule of Fig. 5.
            let mut rng = self.rng().split(5);
            for &k in &visited {
                self.mobile.rebuild_node(k, &self.attachments, &dcache, &mut rng)?;
                messages += 1; // the per-visit state exchange
                self.meter.bump(MessageKind::Join, 1);
            }
            self.mobile.rebuild_node(key, &self.attachments, &dcache, &mut rng)?;
            if mobility == Mobility::Stationary {
                self.stationary.rebuild_node(key, &self.attachments, &dcache, &mut rng)?;
                // Stationary neighbors of the newcomer adopt it too.
                let neighbors: Vec<Key> =
                    self.stationary.node(key)?.entries.iter().map(|e| e.key).collect();
                for n in neighbors {
                    self.stationary.rebuild_node(n, &self.attachments, &dcache, &mut rng)?;
                }
            }
        }

        // Registration sync along §2.3.1: the newcomer registers to the
        // mobile nodes it now holds; nodes that adopted the newcomer
        // register to it (if it is mobile).
        let my_cap = self.node_info(key)?.capacity;
        let my_entries: Vec<Key> = self.mobile.node(key)?.entries.iter().map(|e| e.key).collect();
        for subject in my_entries {
            if self.is_mobile(subject) {
                self.registry.register(Registrant::new(key, my_cap), subject);
                self.stores.apply(key, WalRecord::Register { target: subject.0, capacity: my_cap });
                self.meter.bump(MessageKind::Register, 1);
                messages += 1;
            }
        }
        if mobility == Mobility::Mobile {
            for &holder in &visited {
                if self.mobile.node(holder)?.knows(key) {
                    let cap = self.node_info(holder)?.capacity;
                    self.registry.register(Registrant::new(holder, cap), key);
                    self.stores.apply(holder, WalRecord::Register { target: key.0, capacity: cap });
                    self.meter.bump(MessageKind::Register, 1);
                    messages += 1;
                }
            }
            self.publish_location(key)?;
        }
        Ok(JoinReport { key, visited, messages })
    }

    /// Graceful leave: unpublishes the node's location, dissolves its
    /// registrations and leases, hands its stored records to successors,
    /// and removes it from both layers.
    pub fn leave_node(&mut self, key: Key) -> Result<()> {
        let info = *self.node_info(key)?;
        let dcache = self.distances_arc();
        let replicas = self.config().location_replicas;
        if info.mobility == Mobility::Mobile {
            let set = self.stationary.replica_set(key, replicas)?;
            self.stationary.unpublish(key, replicas)?;
            for &replica in &set {
                self.stores.apply(replica, WalRecord::RecordRemove { subject: key.0 });
            }
        }
        // Survivors durably drop their edges to the leaver; its own
        // store is forgotten below, so only they are mirrored.
        let bereaved: Vec<Key> = self.registry.registrants_of(key).iter().map(|r| r.key).collect();
        for holder in bereaved {
            self.stores.apply(holder, WalRecord::Deregister { target: key.0 });
        }
        for holder in self.leases.holders_of_subject(key) {
            self.stores.apply(holder, WalRecord::LeaseRevoke { subject: key.0 });
        }
        self.registry.remove_everywhere(key);
        self.registry.drop_target(key);
        self.leases.revoke_subject(key);
        self.mobile.leave_gracefully(key, &self.attachments, &dcache, &mut self.meter)?;
        if info.mobility == Mobility::Stationary {
            // Records the leaver hands off land at new replica homes;
            // mirror them into the receiving nodes' stores afterwards.
            let moving: Vec<LocationRecord> =
                self.stationary.node(key)?.store.values().copied().collect();
            self.stationary.leave_gracefully(key, &self.attachments, &dcache, &mut self.meter)?;
            for record in moving {
                let set = self.stationary.replica_set(record.subject, replicas)?;
                for &replica in &set {
                    if self.stationary.node(replica)?.store.get(&record.subject) == Some(&record) {
                        self.stores.apply(replica, durable::record_put(&record));
                    }
                }
            }
            self.remove_key_from_lists(key, Mobility::Stationary);
        } else {
            self.remove_key_from_lists(key, Mobility::Mobile);
        }
        self.forget(key);
        self.stores.forget(key);
        Ok(())
    }

    /// Abrupt failure: the node vanishes without notice. Its stored
    /// records, registrations and published locations linger until
    /// refresh cycles clean them up — exactly the damage reliability
    /// experiments measure.
    pub fn fail_node(&mut self, key: Key) -> Result<()> {
        let info = *self.node_info(key)?;
        // Crash semantics: the node's durable store stops changing at
        // the instant of death (idempotent; `confirm_dead` also freezes).
        self.stores.freeze(key);
        self.mobile.fail_node(key)?;
        if info.mobility == Mobility::Stationary {
            self.stationary.fail_node(key)?;
        }
        self.remove_key_from_lists(key, info.mobility);
        self.forget(key);
        Ok(())
    }

    fn remove_key_from_lists(&mut self, key: Key, mobility: Mobility) {
        match mobility {
            Mobility::Stationary => self.retain_stationary(key),
            Mobility::Mobile => self.retain_mobile(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BristleConfig;
    use crate::system::BristleBuilder;
    use bristle_netsim::transit_stub::TransitStubConfig;

    fn system(n_stat: usize, n_mob: usize, seed: u64) -> BristleSystem {
        BristleBuilder::new(seed)
            .stationary_nodes(n_stat)
            .mobile_nodes(n_mob)
            .topology(TransitStubConfig::tiny())
            .config(BristleConfig::recommended())
            .build()
            .unwrap()
    }

    #[test]
    fn join_admits_routable_node() {
        let mut sys = system(30, 10, 1);
        let report = sys.join_node(Mobility::Mobile).unwrap();
        assert!(sys.is_mobile(report.key));
        assert_eq!(sys.len(), 41);
        // The newcomer can route and be routed to.
        let src = sys.stationary_keys()[0];
        let rep = sys.route_mobile(src, report.key).unwrap();
        assert_eq!(rep.terminus, sys.mobile.owner(report.key).unwrap());
        let back = sys.route_mobile(report.key, src).unwrap();
        assert_eq!(back.terminus, sys.mobile.owner(src).unwrap());
    }

    #[test]
    fn join_message_cost_is_logarithmic() {
        let mut sys = system(120, 40, 2);
        let mut total = 0u64;
        for _ in 0..10 {
            total += sys.join_node(Mobility::Mobile).unwrap().messages;
        }
        let avg = total as f64 / 10.0;
        // 2 × O(log N) with log4(170) ≈ 3.7 and ~O(log N) registrations:
        // anything beyond ~12× log2 N would indicate quadratic behavior.
        let bound = 12.0 * (sys.len() as f64).log2();
        assert!(avg < bound, "avg join messages {avg} vs bound {bound}");
        assert!(avg >= 2.0, "join must send something");
    }

    #[test]
    fn joined_mobile_node_publishes_location() {
        let mut sys = system(30, 5, 3);
        let report = sys.join_node(Mobility::Mobile).unwrap();
        let asker = sys.stationary_keys()[0];
        let disc = sys.discover(asker, report.key).unwrap();
        assert!(disc.resolved.is_some(), "location must be discoverable right after join");
    }

    #[test]
    fn joined_stationary_node_serves_stationary_layer() {
        let mut sys = system(30, 5, 4);
        let report = sys.join_node(Mobility::Stationary).unwrap();
        assert!(sys.stationary.contains(report.key));
        assert_eq!(sys.stationary.len(), 31);
        assert!(sys.naming().permits(report.key, Mobility::Stationary));
    }

    #[test]
    fn join_matches_omniscient_wiring() {
        // After a protocol join, a full rewire must not change the
        // newcomer's reachability (tables may differ in proximity picks,
        // but routing outcomes agree).
        let mut sys = system(40, 10, 5);
        let report = sys.join_node(Mobility::Mobile).unwrap();
        let src = sys.stationary_keys()[1];
        let before = sys.route_mobile(src, report.key).unwrap().terminus;
        sys.rewire();
        let after = sys.route_mobile(src, report.key).unwrap().terminus;
        assert_eq!(before, after);
    }

    #[test]
    fn leave_cleans_every_trace() {
        let mut sys = system(30, 10, 6);
        let victim = sys.mobile_keys()[0];
        sys.leave_node(victim).unwrap();
        assert!(!sys.mobile.contains(victim));
        assert!(sys.node_info(victim).is_err());
        assert!(sys.registry.registrants_of(victim).is_empty());
        assert_eq!(sys.mobile_keys().len(), 9);
        // Its published location is gone: discovery fails.
        let asker = sys.stationary_keys()[0];
        let disc = sys.discover(asker, victim).unwrap();
        assert!(disc.resolved.is_none());
    }

    #[test]
    fn stationary_leave_shrinks_both_layers() {
        let mut sys = system(30, 10, 7);
        let victim = sys.stationary_keys()[5];
        sys.leave_node(victim).unwrap();
        assert_eq!(sys.stationary.len(), 29);
        assert_eq!(sys.mobile.len(), 39);
        assert_eq!(sys.stationary_keys().len(), 29);
    }

    #[test]
    fn fail_node_leaves_stale_location_records() {
        let mut sys = system(30, 10, 8);
        let victim = sys.mobile_keys()[0];
        sys.fail_node(victim).unwrap();
        assert!(!sys.mobile.contains(victim));
        // The stationary layer still *claims* to know where it is — the
        // record is stale, which is what refresh cycles must clean up.
        let asker = sys.stationary_keys()[0];
        let disc = sys.discover(asker, victim).unwrap();
        assert!(disc.resolved.is_some(), "stale record lingers after abrupt failure");
    }

    #[test]
    fn system_survives_churn_burst() {
        let mut sys = system(40, 20, 9);
        for i in 0..10 {
            if i % 2 == 0 {
                sys.join_node(Mobility::Mobile).unwrap();
            } else {
                let victim = sys.mobile_keys()[0];
                sys.leave_node(victim).unwrap();
            }
        }
        sys.rewire();
        sys.sync_registrations();
        let src = sys.stationary_keys()[0];
        for &m in sys.mobile_keys().to_vec().iter().take(5) {
            let rep = sys.route_mobile(src, m).unwrap();
            assert_eq!(rep.terminus, sys.mobile.owner(m).unwrap());
        }
    }
}
