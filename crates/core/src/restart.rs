//! Crash-restart from durable state (the `bristle-store` payoff).
//!
//! [`crate::rejoin`] resurrects a wrongfully buried node *empty*: a
//! stationary node returns with a blank shard and waits for
//! [`BristleSystem::anti_entropy_locations`] to refill it from the
//! surviving replicas, one `Replicate` message per record. A node whose
//! durable store survived the crash can do better:
//! [`BristleSystem::restart_node_from_store`] replays the node's
//! snapshot + write-ahead log and reinstalls its shard, registrations
//! and leases *locally* — zero messages — so the subsequent
//! anti-entropy pass finds (almost) nothing to ship. The durability
//! experiment in `bristle-sim` meters exactly this difference.

use bristle_overlay::key::Key;
use bristle_overlay::meter::MessageKind;
use bristle_store::ReplayReport;

use crate::durable::{location_from_stored, WalRecord};
use crate::error::Result;
use crate::naming::Mobility;
use crate::registry::Registrant;
use crate::system::BristleSystem;
use crate::time::SimTime;

/// What [`BristleSystem::restart_node_from_store`] recovered.
#[derive(Debug, Clone)]
pub struct RestartReport {
    /// The restarted node.
    pub key: Key,
    /// The incarnation the node lives at after the restart (strictly
    /// greater than both the buried and the persisted incarnation).
    pub incarnation: u64,
    /// Whether a buried corpse was actually restarted. `false` means the
    /// node was never buried (or already restored) and nothing happened.
    pub restored: bool,
    /// Whether the restarted node is mobile.
    pub was_mobile: bool,
    /// Location records reinstalled into the node's shard from its
    /// durable store, without any network traffic.
    pub records_recovered: usize,
    /// Persisted records dropped at restart (subject gone, dead, or the
    /// record's TTL lapsed during the downtime).
    pub records_skipped: usize,
    /// Registration edges re-established from the durable store.
    pub registrations_restored: usize,
    /// Persisted registrations dropped (target gone or dead).
    pub registrations_stale: usize,
    /// Lease contracts still within their window that were restored.
    pub leases_restored: usize,
    /// Mobile targets whose LDTs regained the node and were
    /// re-disseminated.
    pub ldts_rejoined: Vec<Key>,
    /// Hops spent republishing the node's location (mobile only).
    pub publish_hops: usize,
    /// What the WAL replay processed, when the node had a WAL backend
    /// (`None` for in-memory stores — they survive a simulated crash
    /// only because the simulator never really killed the process).
    pub replay: Option<ReplayReport>,
}

impl BristleSystem {
    /// Restarts a buried node from its durable store — the
    /// crash-restart alternative to [`BristleSystem::rejoin_node`].
    ///
    /// The node's store is re-opened from disk when it has a WAL
    /// backend (a genuine replay: snapshot, then log, torn tail
    /// tolerated), then its folded state is reinstalled:
    ///
    /// 1. membership and wiring are restored exactly as a rejoin would,
    ///    at an incarnation out-ranking both the funeral and the
    ///    persisted one;
    /// 2. a stationary node's shard of location records is reinstalled
    ///    locally — no `Replicate` traffic — skipping subjects that
    ///    died or whose records expired during the downtime;
    /// 3. registration edges are re-established from the persisted set
    ///    (one register message each, like a rejoin) and unexpired
    ///    leases resume;
    /// 4. affected LDTs are re-disseminated, and a mobile node
    ///    republishes its location.
    ///
    /// Idempotent: restarting a node that was never buried — or was
    /// already restored — is a no-op with `restored == false`.
    pub fn restart_node_from_store(&mut self, key: Key) -> Result<RestartReport> {
        let mut report = RestartReport {
            key,
            incarnation: 0,
            restored: false,
            was_mobile: false,
            records_recovered: 0,
            records_skipped: 0,
            registrations_restored: 0,
            registrations_stale: 0,
            leases_restored: 0,
            ldts_rejoined: Vec::new(),
            publish_hops: 0,
            replay: None,
        };
        let Some(mut info) = self.take_corpse(key) else {
            return Ok(report);
        };

        // The process comes back up: replay disk if there is any.
        report.replay = self.stores.reopen_wal(key);
        let state = self.stores.state(key).cloned().unwrap_or_default();
        let persisted_incarnation = state.identity.map(|(_, inc)| inc).unwrap_or(0);

        info.incarnation = info.incarnation.max(persisted_incarnation) + 1;
        report.incarnation = info.incarnation;
        report.restored = true;
        report.was_mobile = info.mobility == Mobility::Mobile;
        self.dead.remove(&key);
        self.stores.thaw(key);
        self.readmit(key, info)?;
        self.rewire();

        // (2) Reinstall the recovered shard locally. This is the entire
        // point of the WAL: the records come off disk, not the network.
        let now = self.clock.now();
        if info.mobility == Mobility::Stationary {
            for (&raw_subject, stored) in &state.records {
                let subject = Key(raw_subject);
                let record = location_from_stored(subject, stored);
                let usable = self.node_info(subject).is_ok()
                    && !self.is_confirmed_dead(subject)
                    && self.is_mobile(subject)
                    && !record.is_expired(now);
                if usable {
                    self.stationary.node_mut(key)?.store.insert(subject, record);
                    report.records_recovered += 1;
                } else {
                    self.stores.apply(key, WalRecord::RecordRemove { subject: raw_subject });
                    report.records_skipped += 1;
                }
            }
        }

        // (3) Re-register from the persisted edge set, then from the
        // rebuilt routing entries (idempotent where they overlap).
        for &raw_target in state.registrations.keys() {
            let target = Key(raw_target);
            if self.node_info(target).is_ok() && self.is_mobile(target) {
                if self.registry.register(Registrant::new(key, info.capacity), target) {
                    self.meter.bump(MessageKind::Register, 1);
                    report.registrations_restored += 1;
                }
            } else {
                self.stores.apply(key, WalRecord::Deregister { target: raw_target });
                report.registrations_stale += 1;
            }
        }
        let my_entries: Vec<Key> = self.mobile.node(key)?.entries.iter().map(|e| e.key).collect();
        for subject in my_entries {
            if self.is_mobile(subject)
                && self.registry.register(Registrant::new(key, info.capacity), subject)
            {
                self.stores
                    .apply(key, WalRecord::Register { target: subject.0, capacity: info.capacity });
                self.meter.bump(MessageKind::Register, 1);
                report.registrations_restored += 1;
            }
        }
        if report.was_mobile {
            let mut holders: Vec<Key> =
                self.mobile.reverse_index().remove(&key).unwrap_or_default();
            holders.sort_unstable();
            for holder in holders {
                let cap = self.node_info(holder)?.capacity;
                if self.registry.register(Registrant::new(holder, cap), key) {
                    self.stores.apply(holder, WalRecord::Register { target: key.0, capacity: cap });
                    self.meter.bump(MessageKind::Register, 1);
                    report.registrations_restored += 1;
                }
            }
        }

        // Unexpired leases resume where they left off; lapsed ones are
        // durably revoked.
        for (&raw_subject, &expires) in &state.leases {
            let subject = Key(raw_subject);
            let alive = self.node_info(subject).is_ok() && SimTime(expires) > now;
            if alive {
                self.leases.grant(key, subject, now, expires - now.0);
                report.leases_restored += 1;
            } else {
                self.stores.apply(key, WalRecord::LeaseRevoke { subject: raw_subject });
            }
        }

        // (4) Re-disseminate every LDT the node re-entered, exactly as a
        // rejoin would.
        let mut targets: Vec<Key> = self
            .registry
            .iter()
            .filter(|(target, regs)| *target != key && regs.iter().any(|r| r.key == key))
            .map(|(target, _)| target)
            .filter(|&t| self.node_info(t).is_ok())
            .collect();
        targets.sort_unstable();
        for target in targets {
            self.advertise_update(target)?;
            self.meter.bump(MessageKind::LdtRepair, 1);
            report.ldts_rejoined.push(target);
        }

        if report.was_mobile {
            report.publish_hops = self.publish_location(key)?;
            self.advertise_update(key)?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BristleConfig;
    use crate::system::BristleBuilder;
    use bristle_netsim::transit_stub::TransitStubConfig;
    use bristle_store::WalBackend;

    fn system(n_stat: usize, n_mob: usize, seed: u64) -> BristleSystem {
        BristleBuilder::new(seed)
            .stationary_nodes(n_stat)
            .mobile_nodes(n_mob)
            .topology(TransitStubConfig::tiny())
            .config(BristleConfig::recommended())
            .build()
            .unwrap()
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("bristle-restart-test-{}", std::process::id()))
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The stationary node holding the most location records (ties break
    /// toward the smaller key for determinism).
    fn busiest_primary(sys: &BristleSystem) -> Key {
        let mut best = (0usize, Key(u64::MAX));
        for &s in sys.stationary_keys() {
            let n = sys.stationary.node(s).unwrap().store.len();
            if n > best.0 || (n == best.0 && s < best.1) {
                best = (n, s);
            }
        }
        best.1
    }

    #[test]
    fn restart_without_a_funeral_is_a_no_op() {
        let mut sys = system(30, 8, 21);
        let node = sys.stationary_keys()[0];
        let report = sys.restart_node_from_store(node).unwrap();
        assert!(!report.restored);
        assert_eq!(report.records_recovered, 0);
    }

    #[test]
    fn wal_restart_recovers_the_shard_without_messages() {
        let dir = scratch("shard-recovery");
        let mut sys = system(40, 12, 22);
        let victim = busiest_primary(&sys);
        sys.stores.attach_wal(victim, WalBackend::open(&dir, 8).unwrap());
        // Accumulate some churn so the WAL sees live traffic too.
        for i in 0..4 {
            let m = sys.mobile_keys()[i];
            sys.move_node(m, None).unwrap();
        }
        let shard_before: Vec<Key> =
            sys.stationary.node(victim).unwrap().store.keys().copied().collect();
        assert!(!shard_before.is_empty(), "victim must hold records for the test to bite");

        sys.confirm_dead(victim).unwrap();
        assert!(sys.stationary.node(victim).is_err(), "shard gone with the corpse");

        let replicate_before = sys.meter.count(MessageKind::Replicate);
        let report = sys.restart_node_from_store(victim).unwrap();
        assert!(report.restored);
        assert!(report.replay.is_some(), "a WAL-backed node replays its log");
        assert_eq!(report.records_recovered, shard_before.len());
        assert_eq!(
            sys.meter.count(MessageKind::Replicate),
            replicate_before,
            "shard recovery is local: no Replicate traffic"
        );
        for subject in shard_before {
            assert!(
                sys.stationary.node(victim).unwrap().store.contains_key(&subject),
                "record for {subject} must be back"
            );
        }
        assert_eq!(sys.node_info(victim).unwrap().incarnation, report.incarnation);
        assert!(report.incarnation > 0, "restart out-ranks the funeral");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_skips_records_of_nodes_that_died_meanwhile() {
        let dir = scratch("skip-dead-subjects");
        let mut sys = system(40, 12, 23);
        let victim = busiest_primary(&sys);
        sys.stores.attach_wal(victim, WalBackend::open(&dir, 0).unwrap());
        let subject =
            *sys.stationary.node(victim).unwrap().store.keys().next().expect("has a record");
        sys.confirm_dead(victim).unwrap();
        // The subject dies while the primary is down.
        sys.confirm_dead(subject).unwrap();
        let report = sys.restart_node_from_store(victim).unwrap();
        assert!(report.restored);
        assert!(report.records_skipped >= 1, "dead subject's record must not resurrect");
        assert!(!sys.stationary.node(victim).unwrap().store.contains_key(&subject));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_backed_restart_also_recovers() {
        // Without a WAL the simulator's in-memory store still has the
        // state (nothing really crashed); the restart path works the
        // same, minus the replay report.
        let mut sys = system(40, 10, 24);
        let victim = busiest_primary(&sys);
        let shard = sys.stationary.node(victim).unwrap().store.len();
        assert!(shard > 0);
        sys.confirm_dead(victim).unwrap();
        let report = sys.restart_node_from_store(victim).unwrap();
        assert!(report.restored);
        assert!(report.replay.is_none(), "mem backends have nothing to replay");
        assert_eq!(report.records_recovered, shard);
    }

    #[test]
    fn restart_is_deterministic() {
        let run = |seed: u64| {
            let mut sys = system(30, 10, seed);
            let victim = busiest_primary(&sys);
            sys.confirm_dead(victim).unwrap();
            let report = sys.restart_node_from_store(victim).unwrap();
            let tallies: Vec<(MessageKind, u64, u64)> = bristle_overlay::meter::ALL_KINDS
                .iter()
                .map(|&k| (k, sys.meter.count(k), sys.meter.cost(k)))
                .collect();
            (report.records_recovered, report.registrations_restored, tallies)
        };
        assert_eq!(run(25), run(25), "same seed, same recovery, same bill");
    }

    #[test]
    fn restarted_replica_beats_republication_on_anti_entropy_traffic() {
        // The acceptance metric in miniature: recover the same primary
        // once via plain rejoin (empty shard, anti-entropy refills it)
        // and once via WAL restart (shard intact), same seed, and
        // compare the Replicate bill.
        let run = |use_wal: bool| {
            let dir = scratch(if use_wal { "ae-wal" } else { "ae-rejoin" });
            let mut sys = system(40, 12, 26);
            let victim = busiest_primary(&sys);
            if use_wal {
                sys.stores.attach_wal(victim, WalBackend::open(&dir, 0).unwrap());
            }
            let shard = sys.stationary.node(victim).unwrap().store.len();
            assert!(shard > 0);
            sys.confirm_dead(victim).unwrap();
            let before = sys.meter.count(MessageKind::Replicate);
            if use_wal {
                sys.restart_node_from_store(victim).unwrap();
            } else {
                sys.rejoin_node(victim, 1).unwrap();
            }
            sys.anti_entropy_locations().unwrap();
            let bill = sys.meter.count(MessageKind::Replicate) - before;
            let _ = std::fs::remove_dir_all(&dir);
            bill
        };
        let republish = run(false);
        let restart = run(true);
        assert!(
            restart < republish,
            "log-replay rejoin ({restart} Replicates) must beat republication ({republish})"
        );
    }
}
