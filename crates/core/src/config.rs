//! Bristle system configuration.

use bristle_overlay::config::RingConfig;

/// Which naming policy the system assigns keys under (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamingPolicy {
    /// Uniformly random keys (a plain HS-P2P).
    Scrambled,
    /// Stationary keys clustered into a band sized to the stationary
    /// fraction of the population.
    Clustered,
}

/// How registrants keep their cached states fresh (§2.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingMode {
    /// Early binding: mobile nodes push updates through their LDTs and
    /// everyone re-registers periodically.
    Early,
    /// Late binding: consumers resolve addresses on demand via
    /// `_discovery` when their cached state has expired.
    Late,
}

/// All tunables of a [`crate::system::BristleSystem`].
#[derive(Debug, Clone)]
pub struct BristleConfig {
    /// Overlay protocol parameters (shared by both layers).
    pub ring: RingConfig,
    /// Key-assignment policy.
    pub naming: NamingPolicy,
    /// Replication factor k for location records in the stationary layer.
    pub location_replicas: usize,
    /// TTL (ticks) of a published location record.
    pub location_ttl: u64,
    /// TTL (ticks) of leases granted on cached addresses.
    pub lease_ttl: u64,
    /// How long (ticks) a confirmed corpse's state is retained in the
    /// graveyard before [`crate::system::BristleSystem::tick`] prunes
    /// it. While retained, a wrongful funeral can be reversed and a
    /// withdrawn record cannot be replayed; afterwards the memory is
    /// reclaimed so long-running churn stays bounded. 0 disables
    /// pruning (corpses are remembered forever).
    pub graveyard_retention: u64,
    /// Unit cost `v` of one advertisement message (Fig. 4).
    pub unit_cost: u32,
    /// Node capacities are drawn uniformly from this inclusive range.
    pub capacity_range: (u32, u32),
    /// Early vs late binding.
    pub binding: BindingMode,
    /// Adaptive per-peer retransmission timeouts (Jacobson/Karn RTT
    /// estimation in the protocol layer) instead of the fixed
    /// `RetryPolicy` waits. Off by default so seeded traces stay
    /// byte-identical with prior releases.
    pub adaptive_rto: bool,
}

impl BristleConfig {
    /// Sensible defaults: clustered naming, Tornado-like overlay, k = 3
    /// location replicas, 300-tick leases, capacities 1..=15 (the paper's
    /// Fig. 8 range).
    pub fn recommended() -> Self {
        BristleConfig {
            ring: RingConfig::tornado(),
            naming: NamingPolicy::Clustered,
            location_replicas: 3,
            location_ttl: 600,
            lease_ttl: 300,
            graveyard_retention: 2400,
            unit_cost: 1,
            capacity_range: (1, 15),
            binding: BindingMode::Early,
            adaptive_rto: false,
        }
    }

    /// The configuration the paper's §4.1 state-discovery experiment uses:
    /// scrambled naming, and zero-length leases so that *every* mobile-node
    /// hop needs a `_discovery` (the paper assumes mobile nodes advertise
    /// to the stationary layer only).
    pub fn paper_scrambled() -> Self {
        BristleConfig {
            naming: NamingPolicy::Scrambled,
            lease_ttl: 0,
            binding: BindingMode::Late,
            ..Self::recommended()
        }
    }

    /// As [`BristleConfig::paper_scrambled`] but with the clustered naming
    /// scheme (§3's optimization).
    pub fn paper_clustered() -> Self {
        BristleConfig { naming: NamingPolicy::Clustered, ..Self::paper_scrambled() }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) {
        self.ring.validate();
        assert!(self.location_replicas >= 1, "need at least one location replica");
        assert!(self.unit_cost >= 1, "unit cost must be positive");
        let (lo, hi) = self.capacity_range;
        assert!(lo >= 1 && lo <= hi, "invalid capacity range ({lo}, {hi})");
    }
}

impl Default for BristleConfig {
    fn default() -> Self {
        Self::recommended()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        BristleConfig::recommended().validate();
        BristleConfig::paper_scrambled().validate();
        BristleConfig::paper_clustered().validate();
    }

    #[test]
    fn paper_presets_differ_only_in_naming() {
        let s = BristleConfig::paper_scrambled();
        let c = BristleConfig::paper_clustered();
        assert_eq!(s.naming, NamingPolicy::Scrambled);
        assert_eq!(c.naming, NamingPolicy::Clustered);
        assert_eq!(s.lease_ttl, c.lease_ttl);
        assert_eq!(s.binding, c.binding);
    }

    #[test]
    #[should_panic(expected = "capacity range")]
    fn bad_capacity_range_rejected() {
        BristleConfig { capacity_range: (5, 2), ..BristleConfig::recommended() }.validate();
    }
}
