//! Hash-key naming schemes (paper §3, "System-Dependent Optimization").
//!
//! Bristle assigns keys to nodes in one of two ways:
//!
//! * **Scrambled** — keys are uniformly random regardless of mobility, the
//!   default in any plain HS-P2P. Routes between stationary nodes then pass
//!   through mobile nodes whose addresses keep needing resolution, costing
//!   O(log² N) per route.
//! * **Clustered** — stationary nodes draw keys from a contiguous band
//!   `[L, U]` of the ring (`0 < L ≤ k_S ≤ U < ρ`), mobile nodes from its
//!   complement. With ∇ = (U − L)/ρ ≥ 1/2 the paper shows (eq. 1) that a
//!   route between two stationary nodes can always be forwarded by
//!   stationary nodes only, restoring O(log N) routes.
//!
//! The band is sized `∇ ≈ (N − M)/N` so that key density stays uniform.

use bristle_netsim::rng::Pcg64;
use bristle_overlay::key::{Key, RING_SIZE_F64};

/// Whether a node is fixed or free to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mobility {
    /// The node never changes its attachment point.
    Stationary,
    /// The node may move at any time.
    Mobile,
}

/// A key-assignment policy.
///
/// # Examples
///
/// ```
/// use bristle_core::naming::{Mobility, NamingScheme};
/// use bristle_netsim::rng::Pcg64;
///
/// // Half the ring reserved for stationary nodes: the §3 guarantee holds.
/// let scheme = NamingScheme::clustered(0.5);
/// assert!(scheme.guarantees_stationary_routing());
///
/// let mut rng = Pcg64::seed_from_u64(1);
/// let k = scheme.assign(Mobility::Mobile, &mut rng);
/// assert!(scheme.permits(k, Mobility::Mobile));
/// assert!(!scheme.permits(k, Mobility::Stationary));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NamingScheme {
    /// Uniformly random keys for everyone.
    Scrambled,
    /// Stationary keys confined to the clockwise band `[l, u]`; mobile keys
    /// confined to its complement.
    Clustered {
        /// Lower end of the stationary band (inclusive).
        l: Key,
        /// Upper end of the stationary band (inclusive).
        u: Key,
    },
}

impl NamingScheme {
    /// Builds a clustered scheme whose band covers the `stationary_fraction`
    /// of the ring (∇ = stationary_fraction), centered away from key 0 so
    /// that `0 < L` and `U < ρ` hold as the paper requires.
    ///
    /// # Panics
    /// Panics unless `0 < stationary_fraction <= 1`.
    pub fn clustered(stationary_fraction: f64) -> NamingScheme {
        assert!(
            stationary_fraction > 0.0 && stationary_fraction <= 1.0,
            "stationary fraction {stationary_fraction} out of (0, 1]"
        );
        let band = (stationary_fraction * RING_SIZE_F64) as u64;
        let band = band.max(2); // keep the band non-degenerate
                                // Center the band: L = (ρ − band) / 2, U = L + band − 1.
        let l = ((RING_SIZE_F64 - band as f64) / 2.0) as u64;
        let l = l.max(1); // 0 < L
        let u = l.saturating_add(band - 1).min(u64::MAX - 1); // U < ρ
        NamingScheme::Clustered { l: Key(l), u: Key(u) }
    }

    /// The fraction ∇ = (U − L)/ρ of the ring reserved for stationary
    /// nodes (1.0 for the scrambled scheme, where no reservation exists).
    pub fn nabla(&self) -> f64 {
        match self {
            NamingScheme::Scrambled => 1.0,
            NamingScheme::Clustered { l, u } => (u.0 - l.0) as f64 / RING_SIZE_F64,
        }
    }

    /// Whether the paper's worst-case guarantee (eq. 1: stationary→
    /// stationary routes never leave the stationary band) holds.
    pub fn guarantees_stationary_routing(&self) -> bool {
        match self {
            NamingScheme::Scrambled => false,
            NamingScheme::Clustered { .. } => self.nabla() >= 0.5,
        }
    }

    /// Whether `k` is a legal key for a node of the given mobility.
    pub fn permits(&self, k: Key, mobility: Mobility) -> bool {
        match (self, mobility) {
            (NamingScheme::Scrambled, _) => true,
            (NamingScheme::Clustered { l, u }, Mobility::Stationary) => k >= *l && k <= *u,
            (NamingScheme::Clustered { l, u }, Mobility::Mobile) => k < *l || k > *u,
        }
    }

    /// Draws a fresh key legal for the given mobility class.
    ///
    /// # Panics
    /// Panics if the scheme leaves no key space for the class (e.g. a
    /// clustered scheme with a full-ring band and a mobile node).
    pub fn assign(&self, mobility: Mobility, rng: &mut Pcg64) -> Key {
        match self {
            NamingScheme::Scrambled => Key::random(rng),
            NamingScheme::Clustered { l, u } => match mobility {
                Mobility::Stationary => Key(rng.range_inclusive(l.0, u.0)),
                Mobility::Mobile => {
                    let below = l.0; // keys in [0, L)
                    let above = u64::MAX - u.0; // keys in (U, ρ)
                    let total = below.checked_add(above).expect("band smaller than ring");
                    assert!(total > 0, "clustered band leaves no mobile key space");
                    let pick = rng.below(total);
                    if pick < below {
                        Key(pick)
                    } else {
                        Key(u.0 + 1 + (pick - below))
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_band_tracks_fraction() {
        for frac in [0.1, 0.25, 0.5, 0.8, 1.0] {
            let s = NamingScheme::clustered(frac);
            assert!((s.nabla() - frac).abs() < 1e-6, "frac {frac} nabla {}", s.nabla());
        }
    }

    #[test]
    fn clustered_band_respects_strict_bounds() {
        for frac in [0.01, 0.5, 0.999, 1.0] {
            let NamingScheme::Clustered { l, u } = NamingScheme::clustered(frac) else {
                unreachable!()
            };
            assert!(l.0 > 0, "0 < L violated at frac {frac}");
            assert!(u.0 < u64::MAX, "U < rho violated at frac {frac}");
            assert!(l < u);
        }
    }

    #[test]
    fn assignment_respects_classes() {
        let mut rng = Pcg64::seed_from_u64(1);
        let s = NamingScheme::clustered(0.6);
        for _ in 0..500 {
            let ks = s.assign(Mobility::Stationary, &mut rng);
            assert!(s.permits(ks, Mobility::Stationary), "{ks}");
            assert!(!s.permits(ks, Mobility::Mobile));
            let km = s.assign(Mobility::Mobile, &mut rng);
            assert!(s.permits(km, Mobility::Mobile), "{km}");
            assert!(!s.permits(km, Mobility::Stationary));
        }
    }

    #[test]
    fn scrambled_permits_everything() {
        let mut rng = Pcg64::seed_from_u64(2);
        let s = NamingScheme::Scrambled;
        for _ in 0..100 {
            let k = s.assign(Mobility::Mobile, &mut rng);
            assert!(s.permits(k, Mobility::Stationary));
            assert!(s.permits(k, Mobility::Mobile));
        }
        assert_eq!(s.nabla(), 1.0);
        assert!(!s.guarantees_stationary_routing());
    }

    #[test]
    fn guarantee_threshold_at_half() {
        assert!(NamingScheme::clustered(0.5).guarantees_stationary_routing());
        assert!(NamingScheme::clustered(0.7).guarantees_stationary_routing());
        assert!(!NamingScheme::clustered(0.49).guarantees_stationary_routing());
    }

    #[test]
    fn mobile_keys_land_on_both_sides_of_band() {
        let mut rng = Pcg64::seed_from_u64(3);
        let s = NamingScheme::clustered(0.5);
        let NamingScheme::Clustered { l, u } = s else { unreachable!() };
        let (mut lo, mut hi) = (0, 0);
        for _ in 0..1000 {
            let k = s.assign(Mobility::Mobile, &mut rng);
            if k < l {
                lo += 1;
            } else {
                assert!(k > u);
                hi += 1;
            }
        }
        assert!(lo > 300 && hi > 300, "lo {lo} hi {hi}");
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn zero_fraction_rejected() {
        NamingScheme::clustered(0.0);
    }
}
