//! Location records: what the stationary layer stores per mobile node.
//!
//! A mobile node Y publishes `<Y, current address>` to the stationary-layer
//! node whose hash key is closest to Y's (§2.1), replicated across k
//! clustered nodes for availability (§2.3.2). A `_discovery` for Y routes
//! to that node and returns the record.

use bristle_netsim::attach::AttachmentMap;
use bristle_overlay::addr::NetAddr;
use bristle_overlay::key::Key;

use crate::time::SimTime;

/// One mobile node's published location, as stored in the stationary layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocationRecord {
    /// The mobile node this record describes.
    pub subject: Key,
    /// The network address the subject last published.
    pub addr: NetAddr,
    /// The subject's incarnation when the record was published. Ranked
    /// before `seq` on conflicts: a record published after a wrongful
    /// death (incarnation bumped) beats any record from the previous
    /// life, however many sequence numbers that life had racked up on
    /// the other side of a partition.
    pub incarnation: u64,
    /// Publication sequence number; higher wins on conflicts.
    pub seq: u64,
    /// When the record was published.
    pub published_at: SimTime,
    /// Lease duration granted to consumers of this record.
    pub ttl: u64,
}

impl LocationRecord {
    /// Builds a record from the subject's current attachment.
    pub fn fresh(
        subject: Key,
        host: bristle_netsim::attach::HostId,
        attachments: &AttachmentMap,
        incarnation: u64,
        seq: u64,
        now: SimTime,
        ttl: u64,
    ) -> LocationRecord {
        LocationRecord {
            subject,
            addr: NetAddr::current(host, attachments),
            incarnation,
            seq,
            published_at: now,
            ttl,
        }
    }

    /// Whether the recorded address still reaches the subject.
    pub fn is_current(&self, attachments: &AttachmentMap) -> bool {
        self.addr.is_valid(attachments)
    }

    /// Whether the record's own lease has expired at `now`.
    ///
    /// TTL boundary convention (shared with [`crate::lease::Lease`]): a
    /// record published at `t` with lifetime `ttl` is valid on the
    /// half-open window `[t, t + ttl)` — still valid at `t + ttl - 1`,
    /// expired exactly at `t + ttl`. Boundary tests here and in
    /// `lease.rs` pin both sites to this one convention.
    pub fn is_expired(&self, now: SimTime) -> bool {
        now.since(self.published_at) >= self.ttl
    }

    /// Resolves conflicts deterministically: keeps the record from the
    /// higher incarnation, then the higher sequence number, then the
    /// later publication time. Both sides of a healed partition applying
    /// this rule converge on the same record.
    pub fn newer_of(self, other: LocationRecord) -> LocationRecord {
        if (other.incarnation, other.seq, other.published_at)
            > (self.incarnation, self.seq, self.published_at)
        {
            other
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bristle_netsim::graph::RouterId;

    fn setup() -> (AttachmentMap, bristle_netsim::attach::HostId) {
        let mut m = AttachmentMap::new();
        let h = m.attach_new(RouterId(1));
        (m, h)
    }

    #[test]
    fn freshness_tracks_movement() {
        let (mut m, h) = setup();
        let rec = LocationRecord::fresh(Key(5), h, &m, 0, 1, SimTime(0), 30);
        assert!(rec.is_current(&m));
        m.move_host(h, RouterId(2));
        assert!(!rec.is_current(&m));
    }

    #[test]
    fn ttl_expiry() {
        let (m, h) = setup();
        let rec = LocationRecord::fresh(Key(5), h, &m, 0, 1, SimTime(10), 30);
        assert!(!rec.is_expired(SimTime(39)));
        assert!(rec.is_expired(SimTime(40)));
    }

    /// Pins the half-open `[published_at, published_at + ttl)` validity
    /// window at ttl-1 / ttl / ttl+1 — the same convention
    /// `Lease::is_valid` is pinned to in `lease.rs`.
    #[test]
    fn ttl_boundary_three_points() {
        let (m, h) = setup();
        let published = SimTime(100);
        let ttl = 20;
        let rec = LocationRecord::fresh(Key(5), h, &m, 0, 1, published, ttl);
        assert!(!rec.is_expired(published), "fresh at publication");
        assert!(!rec.is_expired(published.plus(ttl - 1)), "valid at ttl-1");
        assert!(rec.is_expired(published.plus(ttl)), "expired exactly at ttl");
        assert!(rec.is_expired(published.plus(ttl + 1)), "stays expired at ttl+1");
    }

    #[test]
    fn newer_of_prefers_higher_seq() {
        let (m, h) = setup();
        let a = LocationRecord::fresh(Key(5), h, &m, 0, 1, SimTime(0), 30);
        let b = LocationRecord::fresh(Key(5), h, &m, 0, 2, SimTime(0), 30);
        assert_eq!(a.newer_of(b).seq, 2);
        assert_eq!(b.newer_of(a).seq, 2);
        // Equal seq: later publication wins.
        let c = LocationRecord::fresh(Key(5), h, &m, 0, 2, SimTime(9), 30);
        assert_eq!(b.newer_of(c).published_at, SimTime(9));
    }

    #[test]
    fn newer_of_ranks_incarnation_above_seq() {
        let (m, h) = setup();
        // The pre-partition life racked up a high seq on the far side;
        // the post-rejoin life publishes at a fresher incarnation with a
        // reset-looking seq. The new life must win deterministically.
        let old_life = LocationRecord::fresh(Key(5), h, &m, 0, 40, SimTime(100), 30);
        let new_life = LocationRecord::fresh(Key(5), h, &m, 1, 2, SimTime(50), 30);
        assert_eq!(old_life.newer_of(new_life).incarnation, 1);
        assert_eq!(new_life.newer_of(old_life).incarnation, 1);
    }
}
