//! Periodic system upkeep: the glue that turns the paper's "periodically
//! refresh / periodically register / leases expire" prose into one
//! callable round.
//!
//! A [`BristleSystem::run_upkeep`] round performs, in order:
//!
//! 1. lease purge (expired contracts dropped);
//! 2. location-record expiry in the stationary layer — "once the
//!    contract of a state expires, the state is no longer valid"
//!    (§2.3.2);
//! 3. failure detection and local repair in both layers (probe entries,
//!    patch the damaged ones — §2.3.2's connectivity monitoring);
//! 4. under **early binding** only: re-registration and proactive
//!    republish + LDT re-advertisement for every mobile node.
//!
//! Late-binding systems skip step 4 and rely on `_discovery` at use
//! time; the ablation experiment quantifies that trade.

use bristle_overlay::repair::RepairReport;

use crate::config::BindingMode;
use crate::error::Result;
use crate::system::BristleSystem;

/// What one upkeep round did.
#[derive(Debug, Clone, Default)]
pub struct UpkeepReport {
    /// Lease contracts purged.
    pub leases_purged: usize,
    /// Expired location records removed from the repository.
    pub records_expired: usize,
    /// Repair sweep over the mobile layer.
    pub mobile_repair: RepairReport,
    /// Repair sweep over the stationary layer.
    pub stationary_repair: RepairReport,
    /// Whether the early-binding refresh ran.
    pub refreshed_bindings: bool,
}

impl BristleSystem {
    /// Removes expired location records from every stationary replica.
    /// Returns how many copies were dropped.
    pub fn expire_locations(&mut self) -> usize {
        let now = self.clock.now();
        let keys: Vec<_> = self.stationary.keys().collect();
        let mut dropped = 0usize;
        for k in keys {
            let node = self.stationary.node_mut(k).expect("known");
            let before = node.store.len();
            node.store.retain(|_, rec| !rec.is_expired(now));
            dropped += before - node.store.len();
        }
        dropped
    }

    /// One full upkeep round (see module docs for the steps).
    pub fn run_upkeep(&mut self) -> Result<UpkeepReport> {
        let mut report = UpkeepReport {
            leases_purged: self.leases.purge_expired(self.clock.now()),
            records_expired: self.expire_locations(),
            ..Default::default()
        };

        // Failure detection + local repair, both layers.
        let dcache = self.distances_arc();
        let mut rng = self.rng().split(6);
        report.mobile_repair =
            self.mobile.repair_sweep(&self.attachments, &dcache, &mut rng, &mut self.meter);
        report.stationary_repair =
            self.stationary.repair_sweep(&self.attachments, &dcache, &mut rng, &mut self.meter);

        if self.config().binding == BindingMode::Early {
            self.refresh_bindings()?;
            report.refreshed_bindings = true;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BristleConfig;
    use crate::system::BristleBuilder;
    use bristle_netsim::transit_stub::TransitStubConfig;

    fn system(seed: u64, cfg: BristleConfig) -> BristleSystem {
        BristleBuilder::new(seed)
            .stationary_nodes(40)
            .mobile_nodes(15)
            .topology(TransitStubConfig::tiny())
            .config(cfg)
            .build()
            .unwrap()
    }

    #[test]
    fn upkeep_noop_on_fresh_system() {
        let mut sys = system(1, BristleConfig::recommended());
        let r = sys.run_upkeep().unwrap();
        assert_eq!(r.leases_purged, 0);
        assert_eq!(r.records_expired, 0);
        assert_eq!(r.mobile_repair.dropped, 0);
        assert_eq!(r.stationary_repair.dropped, 0);
        assert!(r.refreshed_bindings, "recommended config is early binding");
    }

    #[test]
    fn upkeep_expires_stale_records_and_early_binding_republishes() {
        let mut sys = system(2, BristleConfig::recommended());
        let ttl = sys.config().location_ttl;
        sys.tick(ttl + 1);
        let r = sys.run_upkeep().unwrap();
        assert!(r.records_expired > 0, "lapsed records must be dropped");
        // Early binding immediately republished them: discovery still works.
        let watcher = sys.stationary_keys()[0];
        let m = sys.mobile_keys()[0];
        assert!(sys.discover(watcher, m).unwrap().resolved.is_some());
    }

    #[test]
    fn late_binding_upkeep_leaves_a_gap_until_next_publish() {
        let cfg = BristleConfig { binding: BindingMode::Late, ..BristleConfig::recommended() };
        let mut sys = system(3, cfg);
        let ttl = sys.config().location_ttl;
        sys.tick(ttl + 1);
        let r = sys.run_upkeep().unwrap();
        assert!(!r.refreshed_bindings);
        assert!(r.records_expired > 0);
        // The repository is now empty for everyone who has not moved
        // since: discovery fails until the subject republishes.
        let watcher = sys.stationary_keys()[0];
        let m = sys.mobile_keys()[0];
        assert!(sys.discover(watcher, m).unwrap().resolved.is_none());
        // A move republishes and closes the gap.
        sys.move_node(m, None).unwrap();
        assert!(sys.discover(watcher, m).unwrap().resolved.is_some());
    }

    #[test]
    fn upkeep_heals_failure_damage() {
        let mut sys = system(4, BristleConfig::recommended());
        // Abruptly kill a few stationary nodes.
        let victims: Vec<_> = sys.stationary_keys().iter().copied().step_by(6).take(4).collect();
        for v in victims {
            sys.fail_node(v).unwrap();
        }
        assert!(!sys.mobile.health().is_healthy());
        let r = sys.run_upkeep().unwrap();
        assert!(r.mobile_repair.dropped > 0);
        assert!(sys.mobile.health().is_healthy());
        assert!(sys.stationary.health().is_healthy());
    }

    #[test]
    fn upkeep_purges_leases() {
        let mut sys = system(5, BristleConfig::recommended());
        let m = sys.mobile_keys()[0];
        sys.advertise_update(m).unwrap();
        let ttl = sys.config().lease_ttl;
        // Advance the clock without the tick() purge to isolate upkeep.
        sys.clock.advance(ttl + 1);
        let r = sys.run_upkeep().unwrap();
        assert!(r.leases_purged > 0);
    }
}
