//! Robustness of the headline conclusions to the topology family:
//! re-runs the locality (Fig. 9) and naming (Fig. 7) comparisons on flat
//! **Waxman** topologies instead of transit-stub, checking the winners
//! don't change. The paper only evaluates on GT-ITM transit-stub; these
//! tests rule out the conclusions being artifacts of that model.

use std::collections::HashMap;
use std::sync::Arc;

use bristle::core::ldt::Ldt;
use bristle::core::registry::Registrant;
use bristle::netsim::attach::AttachmentMap;
use bristle::netsim::dijkstra::DistanceCache;
use bristle::netsim::rng::Pcg64;
use bristle::netsim::waxman::{WaxmanConfig, WaxmanTopology};
use bristle::overlay::config::RingConfig;
use bristle::overlay::key::Key;
use bristle::overlay::ring::RingDht;

/// Average per-tree per-edge LDT cost on a Waxman network, for one
/// neighbor-selection mode.
fn ldt_cost_on_waxman(ring: RingConfig, seed: u64) -> f64 {
    let mut rng = Pcg64::seed_from_u64(seed);
    let topo = WaxmanTopology::generate(&WaxmanConfig::small(), &mut rng);
    let routers = topo.routers();
    let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 1024);
    let mut attachments = AttachmentMap::new();
    let mut dht: RingDht<()> = RingDht::new(ring);
    for _ in 0..300 {
        let host = attachments.attach_new(*rng.choose(&routers));
        let cap = rng.range_inclusive(1, 15) as u32;
        loop {
            let k = Key::random(&mut rng);
            if dht.insert(k, host, cap).is_ok() {
                break;
            }
        }
    }
    dht.build_all_tables(&attachments, &dcache, &mut rng);
    let rev = dht.reverse_index();
    let caps: HashMap<Key, u32> = dht.iter().map(|n| (n.key, n.capacity)).collect();
    let node_router: HashMap<Key, bristle::netsim::graph::RouterId> =
        dht.iter().map(|n| (n.key, attachments.router(n.host))).collect();
    let mut total = 0u64;
    let mut edges = 0usize;
    for root in dht.keys().collect::<Vec<_>>() {
        let registrants: Vec<Registrant> = rev
            .get(&root)
            .map(|hs| hs.iter().map(|&h| Registrant::new(h, caps[&h])).collect())
            .unwrap_or_default();
        let tree = Ldt::build(Registrant::new(root, caps[&root]), &registrants, |_| 0, 1);
        let (c, e) = tree.edge_cost_sum(|a, b| dcache.distance(node_router[&a], node_router[&b]));
        total += c;
        edges += e;
    }
    total as f64 / edges.max(1) as f64
}

#[test]
fn locality_advantage_survives_waxman_topologies() {
    let with = ldt_cost_on_waxman(RingConfig::tornado(), 11);
    let without = ldt_cost_on_waxman(RingConfig::tornado_no_locality(), 11);
    assert!(
        with < without,
        "locality must stay cheaper on Waxman too: with {with} vs without {without}"
    );
}

#[test]
fn naming_advantage_survives_waxman_topologies() {
    // Scrambled vs clustered route hops on a Waxman physical network,
    // with the mobile-layer semantics emulated at the overlay level:
    // every hop into a "mobile" node (keys outside the stationary band)
    // costs an extra stationary-layer resolution route.
    use bristle::core::naming::{Mobility, NamingScheme};
    use bristle::overlay::meter::Meter;

    let run = |clustered: bool| -> f64 {
        let mut rng = Pcg64::seed_from_u64(21);
        let topo = WaxmanTopology::generate(&WaxmanConfig::small(), &mut rng);
        let routers = topo.routers();
        let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 1024);
        let mut attachments = AttachmentMap::new();
        let n_stat = 100usize;
        let n_mob = 100usize;
        let naming = if clustered {
            NamingScheme::clustered(n_stat as f64 / (n_stat + n_mob) as f64)
        } else {
            NamingScheme::Scrambled
        };
        let mut dht: RingDht<()> = RingDht::new(RingConfig::tornado());
        let mut stationary = Vec::new();
        let mut mobile = std::collections::HashSet::new();
        for i in 0..n_stat + n_mob {
            let class = if i < n_stat { Mobility::Stationary } else { Mobility::Mobile };
            let host = attachments.attach_new(*rng.choose(&routers));
            loop {
                let k = naming.assign(class, &mut rng);
                if dht.insert(k, host, 1).is_ok() {
                    if class == Mobility::Stationary {
                        stationary.push(k);
                    } else {
                        mobile.insert(k);
                    }
                    break;
                }
            }
        }
        dht.build_all_tables(&attachments, &dcache, &mut rng);
        let mut meter = Meter::new();
        let mut hops = 0usize;
        let samples = 300;
        for _ in 0..samples {
            let src = *rng.choose(&stationary);
            let dst = *rng.choose(&stationary);
            let mut cur = src;
            while let Some(next) = dht.next_hop(cur, dst).expect("route") {
                hops += 1;
                if mobile.contains(&next) {
                    // Emulated `_discovery`: one stationary-layer route's
                    // worth of extra hops (≈ log4 of the stationary count).
                    let route =
                        dht.route(src, next, &attachments, &dcache, &mut meter).expect("resolve");
                    hops += route.hop_count();
                }
                cur = next;
            }
        }
        hops as f64 / samples as f64
    };

    let scrambled = run(false);
    let clustered = run(true);
    assert!(
        clustered < scrambled,
        "clustered naming must win on Waxman too: {clustered} vs {scrambled}"
    );
}
