//! Differential test: the calendar/bucket [`EventQueue`] against the
//! [`BinaryHeapQueue`] reference model.
//!
//! Both queues promise the same contract — pop in `(time, seq)` order,
//! FIFO among equal timestamps — so over any interleaving of schedules
//! and pops their outputs must be *identical*. Seeded random workloads
//! drive both through the same operation sequence and compare every
//! popped `(time, event)` pair (event ids are unique, so equality of
//! the pairs pins the seq order too).

use bristle_core::time::SimTime;
use bristle_netsim::rng::Pcg64;
use bristle_sim::engine::{BinaryHeapQueue, EventQueue, WHEEL_SLOTS};

/// Drives both queues through one seeded schedule/pop interleaving and
/// asserts identical pop streams. `max_delay` controls how far ahead of
/// `now` schedules land (spanning the wheel/overflow boundary when
/// larger than `WHEEL_SLOTS`).
fn differential_run(seed: u64, ops: usize, max_delay: u64) {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut bucket: EventQueue<u64> = EventQueue::new();
    let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
    let mut next_id = 0u64;
    let mut pops = 0u64;
    for step in 0..ops {
        // Bias toward schedules early, drain later, with same-time
        // bursts to exercise the FIFO tie-break.
        let scheduling = rng.below(100) < if step < ops / 2 { 65 } else { 35 };
        if scheduling {
            let delay = rng.below(max_delay + 1);
            let burst = 1 + rng.below(4);
            let at = SimTime(bucket.now().0 + delay);
            for _ in 0..burst {
                bucket.schedule_at(at, next_id);
                heap.schedule_at(at, next_id);
                next_id += 1;
            }
        } else {
            assert_eq!(
                bucket.peek_time(),
                heap.peek_time(),
                "peek diverged (seed {seed}, step {step})"
            );
            let b = bucket.pop();
            let h = heap.pop();
            assert_eq!(b, h, "pop diverged (seed {seed}, step {step}, pop {pops})");
            assert_eq!(bucket.len(), heap.len(), "len diverged (seed {seed}, step {step})");
            if b.is_some() {
                pops += 1;
            }
        }
    }
    // Drain both completely: the tails must agree too.
    loop {
        let b = bucket.pop();
        let h = heap.pop();
        assert_eq!(b, h, "drain diverged (seed {seed}, pop {pops})");
        if b.is_none() {
            break;
        }
        pops += 1;
    }
    assert!(bucket.is_empty() && heap.is_empty());
    assert!(pops > 0, "workload must actually pop something (seed {seed})");
}

#[test]
fn identical_pop_order_within_the_wheel() {
    for seed in 0..8 {
        differential_run(seed, 4000, (WHEEL_SLOTS as u64) / 2);
    }
}

#[test]
fn identical_pop_order_across_the_overflow_boundary() {
    for seed in 100..108 {
        differential_run(seed, 4000, (WHEEL_SLOTS as u64) * 3);
    }
}

#[test]
fn identical_pop_order_under_same_tick_storms() {
    // Everything lands within a couple of ticks of now: the tie-break
    // (seq FIFO) carries nearly the whole ordering.
    for seed in 200..208 {
        differential_run(seed, 4000, 2);
    }
}

#[test]
fn identical_pop_order_with_sparse_far_horizons() {
    // Mostly-empty wheel with rare far-future events: exercises repeated
    // re-basing over long empty spans.
    for seed in 300..304 {
        differential_run(seed, 1500, (WHEEL_SLOTS as u64) * 40);
    }
}
