//! Failure-injection tests: every component that claims fault tolerance,
//! exercised under the fault it tolerates — and, where the paper
//! predicts it, under the fault it does *not*.

use bristle::core::config::{BindingMode, BristleConfig};
use bristle::core::system::{BristleBuilder, BristleSystem};
use bristle::netsim::transit_stub::TransitStubConfig;
use bristle::overlay::key::Key;
use bristle::overlay::meter::Meter;

fn system(seed: u64, cfg: BristleConfig) -> BristleSystem {
    BristleBuilder::new(seed)
        .stationary_nodes(60)
        .mobile_nodes(25)
        .topology(TransitStubConfig::small())
        .config(cfg)
        .build()
        .expect("builds")
}

#[test]
fn lost_update_is_recovered_by_late_discovery() {
    // A mobile node moves but its LDT advertisement is "lost" (we move
    // the host behind the system's back and only publish). Routes still
    // deliver: the stale hop triggers a discovery.
    let mut sys = system(1, BristleConfig::recommended());
    let m = sys.mobile_keys()[0];
    let watcher = sys.stationary_keys()[0];
    sys.route_mobile(watcher, m).expect("prime caches");
    let host = sys.node_info(m).expect("info").host;
    let target_router = sys.stub_routers()[1];
    sys.attachments.move_host(host, target_router);
    // Republish only (the advertisement never happens).
    sys.publish_location(m).expect("publish");
    let rep = sys.route_mobile(watcher, m).expect("route");
    assert_eq!(rep.terminus, m, "late binding covers the lost push");
}

#[test]
fn fully_silent_move_still_delivers_via_replicas_going_stale_then_discovery() {
    // Even the publish is lost: the repository still holds the *old*
    // address. Routing then wastes attempts but the simulator charges
    // the true delivery; what must hold is that the route terminates and
    // the discovery honestly reports the stale address as resolved
    // (epoch mismatch visible to the caller).
    let mut sys = system(2, BristleConfig::recommended());
    let m = sys.mobile_keys()[1];
    let watcher = sys.stationary_keys()[1];
    let host = sys.node_info(m).expect("info").host;
    sys.attachments.move_host(host, sys.stub_routers()[0]);
    let disc = sys.discover(watcher, m).expect("discover");
    let addr = disc.resolved.expect("repository still answers");
    assert!(!addr.is_valid(&sys.attachments), "the record is honestly stale");
}

#[test]
fn all_location_replicas_failing_loses_discovery_until_republish() {
    let mut sys = system(3, BristleConfig::recommended());
    let m = sys.mobile_keys()[0];
    let replicas =
        sys.stationary.replica_set(m, sys.config().location_replicas).expect("replica set");
    for r in replicas {
        sys.fail_node(r).expect("fail");
    }
    let watcher = sys.stationary_keys()[0];
    let disc = sys.discover(watcher, m).expect("discover");
    assert!(disc.resolved.is_none(), "all replicas dead → no record");
    // The mover republishes (e.g. on its next move): discovery recovers.
    sys.move_node(m, None).expect("move");
    let disc = sys.discover(watcher, m).expect("discover");
    assert!(disc.resolved.is_some());
}

#[test]
fn partial_replica_failure_is_invisible() {
    let mut sys = system(4, BristleConfig::recommended());
    let m = sys.mobile_keys()[2];
    let replicas =
        sys.stationary.replica_set(m, sys.config().location_replicas).expect("replica set");
    // Kill all but the last replica.
    for r in &replicas[..replicas.len() - 1] {
        sys.fail_node(*r).expect("fail");
    }
    let watcher = sys.stationary_keys().iter().copied().find(|s| !replicas.contains(s)).unwrap();
    let disc = sys.discover(watcher, m).expect("discover");
    assert!(disc.resolved.is_some(), "surviving replica answers");
}

#[test]
fn upkeep_restores_replication_level_after_stationary_failures() {
    let mut sys = system(5, BristleConfig::recommended());
    let victims: Vec<Key> = sys.stationary_keys().iter().copied().step_by(5).take(6).collect();
    for v in victims {
        sys.fail_node(v).expect("fail");
    }
    sys.run_upkeep().expect("upkeep");
    // Early binding republished everything: every mobile node's record
    // exists at its full current replica set.
    for m in sys.mobile_keys().to_vec() {
        let set = sys.stationary.replica_set(m, sys.config().location_replicas).expect("set");
        for r in set {
            assert!(
                sys.stationary.node(r).expect("node").store.contains_key(&m),
                "replica {r} missing record of {m}"
            );
        }
    }
}

#[test]
fn expired_leases_do_not_crash_only_cost() {
    let mut sys = system(6, BristleConfig { lease_ttl: 1, ..BristleConfig::recommended() });
    let watcher = sys.stationary_keys()[0];
    // With 1-tick leases everything re-discovers constantly.
    let mut discoveries = 0;
    for (i, m) in sys.mobile_keys().to_vec().into_iter().enumerate().take(10) {
        sys.tick(2);
        let rep = sys.route_mobile(watcher, m).expect("route");
        assert_eq!(rep.terminus, m, "delivery unaffected (lookup {i})");
        discoveries += rep.discoveries;
    }
    assert!(discoveries > 0, "short leases must show up as discovery traffic");
}

#[test]
fn overlay_survives_forty_percent_abrupt_failure() {
    let mut sys = system(7, BristleConfig::recommended());
    let all: Vec<Key> = sys.mobile.keys().collect();
    let victims: Vec<Key> = all.iter().copied().filter(|k| k.0 % 5 < 2).collect();
    for v in &victims {
        if sys.stationary_keys().len() > 8 || sys.is_mobile(*v) {
            let _ = sys.fail_node(*v);
        }
    }
    sys.run_upkeep().expect("upkeep");
    assert!(sys.mobile.health().is_healthy());
    assert!(sys.stationary.health().is_healthy());
    // Survivors still route to each other.
    let survivors: Vec<Key> = sys.mobile.keys().collect();
    let mut meter = Meter::new();
    let dcache = sys.distances_arc();
    for i in (0..survivors.len()).step_by(5) {
        let src = survivors[i];
        let dst = survivors[(i * 3 + 1) % survivors.len()];
        let route =
            sys.mobile.route(src, dst, &sys.attachments, &dcache, &mut meter).expect("route");
        assert_eq!(route.terminus(), sys.mobile.owner(dst).expect("owner"));
    }
}

#[test]
fn type_b_agent_flap_recovers() {
    use bristle::sim::baseline_type_b::TypeBSystem;
    let mut sys = TypeBSystem::build(8, 40, 15, &TransitStubConfig::tiny());
    let m = sys.mobile_keys()[0];
    let src = sys.stationary_keys()[0];
    sys.move_node(m).expect("move");
    for _ in 0..3 {
        sys.set_agent_alive(m, false);
        let down = sys.route(src, m).expect("route");
        if sys.dht.owner(m).expect("owner") == m {
            assert!(!down.delivered);
        }
        sys.set_agent_alive(m, true);
        let up = sys.route(src, m).expect("route");
        assert!(up.delivered, "recovery after agent restart");
    }
}

#[test]
fn binding_mode_late_survives_total_lease_loss() {
    let cfg =
        BristleConfig { binding: BindingMode::Late, lease_ttl: 0, ..BristleConfig::recommended() };
    let mut sys = system(9, cfg);
    for m in sys.mobile_keys().to_vec() {
        sys.move_node(m, None).expect("move");
    }
    let watcher = sys.stationary_keys()[0];
    for m in sys.mobile_keys().to_vec().into_iter().take(8) {
        let rep = sys.route_mobile(watcher, m).expect("route");
        assert_eq!(rep.terminus, m);
        assert!(rep.discoveries > 0, "zero-TTL leases mean discovery every time");
    }
}
