//! Acceptance tests for the self-healing overlay under churn
//! ([`bristle::sim::resilience`]).
//!
//! The headline scenario: a message-driven system under balanced churn
//! (including silent crashes and a deliberate kill of the busiest
//! location-record primary) over a 10%-lossy transport. Every confirmed
//! death must trigger an LDT repair that leaves all surviving
//! registrants root-reachable, `_discovery` for subjects whose primary
//! died must resolve through a surviving replica, delivery success must
//! stay at or above 95%, and two same-seed runs must agree on every
//! meter tally.

use bristle::core::config::BristleConfig;
use bristle::core::system::{BristleBuilder, BristleSystem};
use bristle::netsim::transit_stub::TransitStubConfig;
use bristle::overlay::key::Key;
use bristle::proto::transport::FaultConfig;
use bristle::sim::messaging::MessagingBristleSystem;
use bristle::sim::resilience::{run_churn_messaging, ResilienceConfig};

/// The two fixed seeds CI runs; both exercise crashes of ordinary nodes
/// *and* of the record primary, stale answers, and replica failovers.
const CI_SEEDS: [u64; 2] = [8, 27];

fn assert_resilient(seed: u64) {
    let cfg = ResilienceConfig::standard(seed);
    let out = run_churn_messaging(&cfg);

    // Healing: every LDT membership a confirmed-dead node held was
    // repaired, and every repaired tree kept its live registrants
    // root-reachable.
    assert!(out.deaths_confirmed >= 2, "seed {seed} confirmed too few deaths: {out:?}");
    assert_eq!(out.deaths_confirmed, out.fails, "seed {seed}: every crash must be confirmed");
    assert_eq!(
        out.ldts_repaired, out.repairs_expected,
        "seed {seed}: every orphaned LDT membership must be re-grafted"
    );
    assert!(out.invariant_ok, "seed {seed}: a repaired tree failed root-reachability");

    // Failover: records whose primary died keep resolving via replicas.
    assert!(out.dead_primary_lookups > 0, "seed {seed} never tested a dead primary");
    assert_eq!(
        out.dead_primary_hits, out.dead_primary_lookups,
        "seed {seed}: a record with a dead primary failed to resolve"
    );

    // Liveness under loss: delivery success stays at or above 95%.
    assert!(out.routes_attempted > 0);
    assert!(
        out.delivery_rate() >= 0.95,
        "seed {seed} delivery rate {:.3} below 0.95 ({}/{})",
        out.delivery_rate(),
        out.routes_delivered,
        out.routes_attempted
    );

    // Staleness is exercised and repaired, not just absent.
    assert!(out.discoveries > 0);
    assert_eq!(out.stale_repairs, out.stale_answers);
}

#[test]
fn churn_scenario_heals_and_delivers_seed_a() {
    assert_resilient(CI_SEEDS[0]);
}

#[test]
fn churn_scenario_heals_and_delivers_seed_b() {
    assert_resilient(CI_SEEDS[1]);
}

/// Determinism: the full scenario — churn draws, lossy transport,
/// heartbeats, healing — replays identically from the same seed, meter
/// tallies included.
#[test]
fn same_seed_runs_agree_on_every_meter_tally() {
    for seed in CI_SEEDS {
        let cfg = ResilienceConfig::standard(seed);
        let a = run_churn_messaging(&cfg);
        let b = run_churn_messaging(&cfg);
        assert_eq!(a, b, "seed {seed} diverged between identical runs");
    }
}

fn build(seed: u64) -> BristleSystem {
    BristleBuilder::new(seed)
        .stationary_nodes(40)
        .mobile_nodes(12)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds")
}

/// A mobile target whose LDT has at least `min` members, plus that tree's
/// deepest member — a leaf (parents precede children in the node array,
/// so the last node has no descendants) that is safe to crash mid-round.
fn target_and_leaf(sys: &mut BristleSystem, min: usize) -> (Key, Key, usize) {
    let mut targets = sys.mobile_keys().to_vec();
    targets.sort_unstable();
    for t in targets {
        let tree = sys.build_ldt(t).expect("mobile target has a tree");
        if tree.len() >= min {
            let leaf = tree.nodes().last().expect("non-empty").key;
            if leaf != t {
                return (t, leaf, tree.edge_count());
            }
        }
    }
    panic!("no mobile target with an LDT of {min}+ members");
}

/// A registrant that crashes *while* an LDT dissemination round is in
/// flight loses its ack (the round reports the shortfall rather than
/// stalling); confirmation then prunes it from the registry and re-grafts
/// the tree, after which a fresh round acks every edge.
#[test]
fn node_failing_mid_ldt_dissemination_is_pruned() {
    let mut msys = MessagingBristleSystem::new(build(42), FaultConfig::perfect(), 7);
    let (target, victim, edges) = target_and_leaf(&mut msys.sys, 3);

    // The crash lands one micro-tick in: after the round's sends are
    // spawned, before any of them deliver.
    msys.schedule_fail(bristle::core::time::SimTime(msys.micro_now().0 + 1), victim);
    let acked = msys.disseminate_update(target).expect("round completes");
    assert!(acked < edges, "victim's ack must be missing ({acked} of {edges})");
    assert!(msys.is_failed(victim));

    // Heartbeats notice the silence; confirmation heals the tree.
    let mut confirmed = false;
    for _ in 0..6 {
        for k in msys.heartbeat_round() {
            let report = msys.confirm_and_heal(k).expect("confirmed peer is known");
            if k == victim {
                assert!(
                    report.ldts_repaired.contains(&target),
                    "victim's death must repair the target's tree: {report:?}"
                );
                assert!(report.invariant_ok);
                confirmed = true;
            }
        }
        if confirmed {
            break;
        }
    }
    assert!(confirmed, "the mid-round crash was never confirmed");
    assert!(
        !msys.sys.registry.registrants_of(target).iter().any(|r| r.key == victim),
        "the dead registrant must be pruned"
    );

    // The healed tree disseminates cleanly: every remaining edge acks.
    let healed_edges = msys.sys.build_ldt(target).expect("tree rebuilds").edge_count();
    let acked = msys.disseminate_update(target).expect("round completes");
    assert_eq!(acked, healed_edges, "the healed tree must ack in full");
    assert!(healed_edges > 0, "the tree must still have live members");
}
