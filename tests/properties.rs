//! Property-style tests over the stack's core invariants.
//!
//! The always-on tests below drive each invariant with seeded [`Pcg64`]
//! sampling, so they run in the offline build with zero external
//! dependencies. The original `proptest` versions (with shrinking) are
//! preserved behind the `proptest` feature; enabling it requires
//! restoring `proptest` as a dev-dependency in the root `Cargo.toml`.

use bristle::core::advertise::{plan_advertisement, AdvertiseStep};
use bristle::core::analysis::{member_only_responsibility, non_member_responsibility, Population};
use bristle::core::ldt::Ldt;
use bristle::core::lease::LeaseTable;
use bristle::core::naming::{Mobility, NamingScheme};
use bristle::core::registry::Registrant;
use bristle::core::time::SimTime;
use bristle::netsim::dijkstra::{single_source, UNREACHABLE};
use bristle::netsim::graph::{Graph, RouterId};
use bristle::netsim::rng::Pcg64;
use bristle::overlay::key::Key;

fn random_registrants(rng: &mut Pcg64, max: usize) -> Vec<Registrant> {
    let n = rng.index(max + 1);
    (0..n).map(|i| Registrant::new(Key(i as u64 + 1), rng.range_inclusive(1, 15) as u32)).collect()
}

fn random_graph(seed: u64, n: usize) -> Graph {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut g = Graph::with_vertices(n);
    for i in 1..n {
        let j = rng.index(i);
        g.add_edge(RouterId(i as u32), RouterId(j as u32), rng.range_inclusive(1, 30) as u32);
    }
    for _ in 0..n / 2 {
        let a = rng.index(n);
        let b = rng.index(n);
        if a != b && !g.has_edge(RouterId(a as u32), RouterId(b as u32)) {
            g.add_edge(RouterId(a as u32), RouterId(b as u32), rng.range_inclusive(1, 30) as u32);
        }
    }
    g
}

// ---------------------------------------------------------------------
// Key-space arithmetic.
// ---------------------------------------------------------------------

#[test]
fn clockwise_distance_antisymmetric_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x11);
    for _ in 0..500 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let (ka, kb) = (Key(a), Key(b));
        let cw = ka.clockwise_to(kb);
        let ccw = kb.clockwise_to(ka);
        if a == b {
            assert_eq!(cw, 0);
            assert_eq!(ccw, 0);
        } else {
            assert_eq!(cw.wrapping_add(ccw), 0, "cw + ccw wraps to ring size");
        }
    }
    // Edge pairs the sampler is unlikely to hit.
    for (a, b) in [(0, u64::MAX), (u64::MAX, 0), (1, 0), (u64::MAX, u64::MAX)] {
        let cw = Key(a).clockwise_to(Key(b));
        let ccw = Key(b).clockwise_to(Key(a));
        if a == b {
            assert_eq!(cw, 0);
        } else {
            assert_eq!(cw.wrapping_add(ccw), 0);
        }
    }
}

#[test]
fn ring_distance_symmetric_and_bounded_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x12);
    for _ in 0..500 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let d = Key(a).ring_distance(Key(b));
        assert_eq!(d, Key(b).ring_distance(Key(a)));
        assert!(d <= u64::MAX / 2 + 1);
    }
}

#[test]
fn offset_roundtrip_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x13);
    for _ in 0..500 {
        let (a, delta) = (rng.next_u64(), rng.next_u64());
        let k = Key(a).offset(delta);
        assert_eq!(Key(a).clockwise_to(k), delta);
    }
}

#[test]
fn cw_range_consistent_with_distances_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x14);
    for _ in 0..500 {
        let (s, xk, e) = (Key(rng.next_u64()), Key(rng.next_u64()), Key(rng.next_u64()));
        if s != e {
            let inside = s.in_cw_range(xk, e);
            let expect = s.clockwise_to(xk) != 0 && s.clockwise_to(xk) <= s.clockwise_to(e);
            assert_eq!(inside, expect);
        }
    }
}

#[test]
fn digit_reconstruction_all_widths_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x15);
    for _ in 0..200 {
        let v = rng.next_u64();
        for bits in 1u32..=16 {
            let k = Key(v);
            let mut rebuilt: u64 = 0;
            for level in (0..Key::levels(bits)).rev() {
                let shift = level * bits;
                if shift >= 64 {
                    continue;
                }
                rebuilt |= k.digit(level, bits) << shift;
            }
            assert_eq!(rebuilt, v, "bits {bits}");
        }
    }
}

// ---------------------------------------------------------------------
// Naming scheme.
// ---------------------------------------------------------------------

#[test]
fn clustered_assignment_always_legal_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x21);
    for _ in 0..50 {
        let frac = 0.01 + rng.f64() * 0.98;
        let scheme = NamingScheme::clustered(frac);
        for _ in 0..32 {
            let s = scheme.assign(Mobility::Stationary, &mut rng);
            assert!(scheme.permits(s, Mobility::Stationary));
            assert!(!scheme.permits(s, Mobility::Mobile));
            let m = scheme.assign(Mobility::Mobile, &mut rng);
            assert!(scheme.permits(m, Mobility::Mobile));
            assert!(!scheme.permits(m, Mobility::Stationary));
        }
    }
}

#[test]
fn nabla_matches_requested_fraction_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x22);
    for _ in 0..200 {
        let frac = 0.01 + rng.f64() * 0.99;
        let scheme = NamingScheme::clustered(frac);
        assert!((scheme.nabla() - frac).abs() < 1e-6);
    }
}

// ---------------------------------------------------------------------
// Advertisement partitioning (Fig. 4).
// ---------------------------------------------------------------------

#[test]
fn partitions_cover_exactly_once_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x31);
    for _ in 0..200 {
        let regs = random_registrants(&mut rng, 39);
        let avail = rng.range_inclusive(0, 20) as u32;
        let v = rng.range_inclusive(1, 3) as u32;
        let steps = plan_advertisement(&regs, avail, v);
        let mut covered: Vec<Key> = steps
            .iter()
            .flat_map(|s: &AdvertiseStep| {
                std::iter::once(s.head.key).chain(s.delegated.iter().map(|r| r.key))
            })
            .collect();
        covered.sort_unstable();
        let mut expected: Vec<Key> = regs.iter().map(|r| r.key).collect();
        expected.sort_unstable();
        assert_eq!(covered, expected);
    }
}

#[test]
fn partition_sizes_near_equal_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x32);
    for _ in 0..200 {
        let regs = random_registrants(&mut rng, 39);
        let avail = rng.range_inclusive(2, 20) as u32;
        let steps = plan_advertisement(&regs, avail, 1);
        if steps.len() > 1 {
            let sizes: Vec<usize> = steps.iter().map(AdvertiseStep::partition_size).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1, "sizes {sizes:?}");
        }
    }
}

#[test]
fn heads_are_top_capacities_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x33);
    for _ in 0..200 {
        let regs = random_registrants(&mut rng, 39);
        if regs.is_empty() {
            continue;
        }
        let avail = rng.range_inclusive(2, 20) as u32;
        let steps = plan_advertisement(&regs, avail, 1);
        let k = steps.len();
        let mut caps: Vec<u32> = regs.iter().map(|r| r.capacity).collect();
        caps.sort_unstable_by(|a, b| b.cmp(a));
        let mut heads: Vec<u32> = steps.iter().map(|s| s.head.capacity).collect();
        heads.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(heads, caps[..k].to_vec());
    }
}

// ---------------------------------------------------------------------
// LDT structure.
// ---------------------------------------------------------------------

#[test]
fn ldt_spans_membership_exactly_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x41);
    for _ in 0..200 {
        let regs = random_registrants(&mut rng, 39);
        let root_cap = rng.range_inclusive(1, 15) as u32;
        let used = rng.range_inclusive(0, 15) as u32;
        let root = Registrant::new(Key(0), root_cap);
        let tree = Ldt::build(root, &regs, |_| used, 1);
        assert_eq!(tree.len(), regs.len() + 1);
        assert_eq!(tree.edge_count(), regs.len());
        assert!(tree.depth() >= 1);
        assert!(tree.depth() as usize <= regs.len() + 1);
        let total: usize = tree.level_histogram().iter().sum();
        assert_eq!(total, tree.len());
        for (i, n) in tree.nodes().iter().enumerate() {
            if let Some(p) = n.parent {
                assert!((p as usize) < i, "parents precede children");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Leases.
// ---------------------------------------------------------------------

#[test]
fn lease_validity_window_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x51);
    for _ in 0..500 {
        let now = rng.index(1_000_000) as u64;
        let ttl = rng.index(10_000) as u64;
        let probe = rng.index(20_000) as u64;
        let mut t = LeaseTable::new();
        t.grant(Key(1), Key(2), SimTime(now), ttl);
        let at = SimTime(now + probe);
        assert_eq!(t.is_fresh(Key(1), Key(2), at), probe < ttl);
    }
}

#[test]
fn purge_is_idempotent_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x52);
    for _ in 0..200 {
        let now = rng.index(1000) as u64;
        let ttl = rng.index(100) as u64;
        let mut t = LeaseTable::new();
        for i in 0..10u64 {
            t.grant(Key(i), Key(i + 1), SimTime(now), ttl + i);
        }
        let probe = SimTime(now + ttl + 5);
        let first = t.purge_expired(probe);
        let second = t.purge_expired(probe);
        assert_eq!(second, 0);
        assert!(first <= 10);
    }
}

// ---------------------------------------------------------------------
// Analytic model consistency.
// ---------------------------------------------------------------------

#[test]
fn non_member_dominates_member_by_log_n_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x61);
    for _ in 0..200 {
        let n = 64.0 + rng.f64() * (1e7 - 64.0);
        let frac = 0.01 + rng.f64() * 0.94;
        let p = Population::new(n, n * frac);
        let member = member_only_responsibility(p);
        let non = non_member_responsibility(p);
        assert!((non / member - p.log_n()).abs() < 1e-6);
    }
}

// ---------------------------------------------------------------------
// Shortest paths.
// ---------------------------------------------------------------------

#[test]
fn dijkstra_triangle_inequality_seeded() {
    let mut rng = Pcg64::seed_from_u64(0x71);
    for _ in 0..16 {
        let seed = rng.next_u64();
        let n = 5 + rng.index(35);
        let g = random_graph(seed, n);
        let rows: Vec<Vec<u64>> = (0..n).map(|v| single_source(&g, RouterId(v as u32))).collect();
        for a in 0..n {
            for b in 0..n {
                assert_eq!(rows[a][b], rows[b][a], "symmetry");
                for c in 0..n {
                    if rows[a][b] != UNREACHABLE && rows[b][c] != UNREACHABLE {
                        assert!(rows[a][c] <= rows[a][b] + rows[b][c]);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Original proptest versions (shrinking). Gated: enabling the `proptest`
// feature requires restoring the proptest dev-dependency.
// ---------------------------------------------------------------------

#[cfg(feature = "proptest")]
mod proptest_based {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn clockwise_distance_antisymmetric(a: u64, b: u64) {
            let (ka, kb) = (Key(a), Key(b));
            let cw = ka.clockwise_to(kb);
            let ccw = kb.clockwise_to(ka);
            if a == b {
                prop_assert_eq!(cw, 0);
                prop_assert_eq!(ccw, 0);
            } else {
                prop_assert_eq!(cw.wrapping_add(ccw), 0, "cw + ccw wraps to ring size");
            }
        }

        #[test]
        fn ring_distance_symmetric_and_bounded(a: u64, b: u64) {
            let d = Key(a).ring_distance(Key(b));
            prop_assert_eq!(d, Key(b).ring_distance(Key(a)));
            prop_assert!(d <= u64::MAX / 2 + 1);
        }

        #[test]
        fn offset_roundtrip(a: u64, delta: u64) {
            let k = Key(a).offset(delta);
            prop_assert_eq!(Key(a).clockwise_to(k), delta);
        }

        #[test]
        fn cw_range_consistent_with_distances(start: u64, x: u64, end: u64) {
            let (s, xk, e) = (Key(start), Key(x), Key(end));
            if s != e {
                let inside = s.in_cw_range(xk, e);
                let expect = s.clockwise_to(xk) != 0 && s.clockwise_to(xk) <= s.clockwise_to(e);
                prop_assert_eq!(inside, expect);
            }
        }

        #[test]
        fn digit_reconstruction_all_widths(v: u64, bits in 1u32..=16) {
            let k = Key(v);
            let mut rebuilt: u64 = 0;
            for level in (0..Key::levels(bits)).rev() {
                let shift = level * bits;
                if shift >= 64 { continue; }
                rebuilt |= k.digit(level, bits) << shift;
            }
            prop_assert_eq!(rebuilt, v);
        }

        #[test]
        fn clustered_assignment_always_legal(frac in 0.01f64..=0.99, seed: u64) {
            let scheme = NamingScheme::clustered(frac);
            let mut rng = Pcg64::seed_from_u64(seed);
            for _ in 0..32 {
                let s = scheme.assign(Mobility::Stationary, &mut rng);
                prop_assert!(scheme.permits(s, Mobility::Stationary));
                prop_assert!(!scheme.permits(s, Mobility::Mobile));
                let m = scheme.assign(Mobility::Mobile, &mut rng);
                prop_assert!(scheme.permits(m, Mobility::Mobile));
                prop_assert!(!scheme.permits(m, Mobility::Stationary));
            }
        }

        #[test]
        fn nabla_matches_requested_fraction(frac in 0.01f64..=1.0) {
            let scheme = NamingScheme::clustered(frac);
            prop_assert!((scheme.nabla() - frac).abs() < 1e-6);
        }
    }

    fn registrants_strategy() -> impl Strategy<Value = Vec<Registrant>> {
        prop::collection::vec(1u32..=15, 0..40).prop_map(|caps| {
            caps.into_iter()
                .enumerate()
                .map(|(i, c)| Registrant::new(Key(i as u64 + 1), c))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn partitions_cover_exactly_once(regs in registrants_strategy(), avail in 0u32..=20, v in 1u32..=3) {
            let steps = plan_advertisement(&regs, avail, v);
            let mut covered: Vec<Key> = steps
                .iter()
                .flat_map(|s: &AdvertiseStep| std::iter::once(s.head.key).chain(s.delegated.iter().map(|r| r.key)))
                .collect();
            covered.sort_unstable();
            let mut expected: Vec<Key> = regs.iter().map(|r| r.key).collect();
            expected.sort_unstable();
            prop_assert_eq!(covered, expected);
        }

        #[test]
        fn partition_sizes_near_equal(regs in registrants_strategy(), avail in 2u32..=20) {
            let steps = plan_advertisement(&regs, avail, 1);
            if steps.len() > 1 {
                let sizes: Vec<usize> = steps.iter().map(AdvertiseStep::partition_size).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                prop_assert!(max - min <= 1, "sizes {:?}", sizes);
            }
        }

        #[test]
        fn heads_are_top_capacities(regs in registrants_strategy(), avail in 2u32..=20) {
            prop_assume!(!regs.is_empty());
            let steps = plan_advertisement(&regs, avail, 1);
            let k = steps.len();
            let mut caps: Vec<u32> = regs.iter().map(|r| r.capacity).collect();
            caps.sort_unstable_by(|a, b| b.cmp(a));
            let mut heads: Vec<u32> = steps.iter().map(|s| s.head.capacity).collect();
            heads.sort_unstable_by(|a, b| b.cmp(a));
            prop_assert_eq!(heads, caps[..k].to_vec());
        }

        #[test]
        fn ldt_spans_membership_exactly(regs in registrants_strategy(), root_cap in 1u32..=15, used in 0u32..=15) {
            let root = Registrant::new(Key(0), root_cap);
            let tree = Ldt::build(root, &regs, |_| used, 1);
            prop_assert_eq!(tree.len(), regs.len() + 1);
            prop_assert_eq!(tree.edge_count(), regs.len());
            prop_assert!(tree.depth() >= 1);
            prop_assert!(tree.depth() as usize <= regs.len() + 1);
            let total: usize = tree.level_histogram().iter().sum();
            prop_assert_eq!(total, tree.len());
            for (i, n) in tree.nodes().iter().enumerate() {
                if let Some(p) = n.parent {
                    prop_assert!((p as usize) < i);
                }
            }
        }

        #[test]
        fn lease_validity_window(now in 0u64..1_000_000, ttl in 0u64..10_000, probe in 0u64..20_000) {
            let mut t = LeaseTable::new();
            t.grant(Key(1), Key(2), SimTime(now), ttl);
            let at = SimTime(now + probe);
            prop_assert_eq!(t.is_fresh(Key(1), Key(2), at), probe < ttl);
        }

        #[test]
        fn purge_is_idempotent(now in 0u64..1000, ttl in 0u64..100) {
            let mut t = LeaseTable::new();
            for i in 0..10u64 {
                t.grant(Key(i), Key(i + 1), SimTime(now), ttl + i);
            }
            let probe = SimTime(now + ttl + 5);
            let first = t.purge_expired(probe);
            let second = t.purge_expired(probe);
            prop_assert_eq!(second, 0);
            prop_assert!(first <= 10);
        }

        #[test]
        fn non_member_dominates_member_by_log_n(n in 64.0f64..1e7, frac in 0.01f64..0.95) {
            let p = Population::new(n, n * frac);
            let member = member_only_responsibility(p);
            let non = non_member_responsibility(p);
            prop_assert!((non / member - p.log_n()).abs() < 1e-6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn dijkstra_triangle_inequality(seed: u64, n in 5usize..40) {
            let g = random_graph(seed, n);
            let rows: Vec<Vec<u64>> = (0..n).map(|v| single_source(&g, RouterId(v as u32))).collect();
            for a in 0..n {
                for b in 0..n {
                    prop_assert_eq!(rows[a][b], rows[b][a], "symmetry");
                    for c in 0..n {
                        if rows[a][b] != UNREACHABLE && rows[b][c] != UNREACHABLE {
                            prop_assert!(rows[a][c] <= rows[a][b] + rows[b][c]);
                        }
                    }
                }
            }
        }
    }
}
