//! Integration tests for the message-passing driver
//! ([`bristle::sim::messaging`]) against the function-call path.
//!
//! The headline acceptance scenario: a seeded route to a mobile node
//! through a 20%-lossy [`SimTransport`] with a `move_node` fired while
//! the forward is in flight completes via a `_discovery` retry, with the
//! meter showing the [`MessageKind::DiscoveryRetry`]. On a perfect
//! transport, per-kind message counts match the function-call path
//! exactly for the same seed.

use bristle::core::config::BristleConfig;
use bristle::core::system::{BristleBuilder, BristleSystem};
use bristle::core::time::SimTime;
use bristle::netsim::transit_stub::TransitStubConfig;
use bristle::overlay::addr::{NetAddr, StatePair};
use bristle::overlay::key::Key;
use bristle::overlay::meter::{MessageKind, Meter, ALL_KINDS};
use bristle::proto::transport::FaultConfig;
use bristle::sim::messaging::{MessagingBristleSystem, MessagingError};

fn build(seed: u64) -> BristleSystem {
    BristleBuilder::new(seed)
        .stationary_nodes(40)
        .mobile_nodes(12)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds")
}

fn counts(meter: &Meter) -> Vec<(MessageKind, u64, u64)> {
    ALL_KINDS.iter().map(|&k| (k, meter.count(k), meter.cost(k))).collect()
}

fn delta(before: &[(MessageKind, u64, u64)], after: &Meter) -> Vec<(MessageKind, u64, u64)> {
    before.iter().map(|&(k, c0, w0)| (k, after.count(k) - c0, after.cost(k) - w0)).collect()
}

/// A pair whose mobile-layer route is a single direct hop to a mobile
/// target, so a staged move provably races the in-flight forward.
fn direct_pair(sys: &BristleSystem) -> (Key, Key) {
    for &target in sys.mobile_keys() {
        for src in sys.mobile.keys() {
            if src != target && sys.mobile.next_hop(src, target).ok().flatten() == Some(target) {
                return (src, target);
            }
        }
    }
    panic!("no direct mobile pair in this population");
}

/// Installs a fresh (but about-to-be-stale) resolved state-pair at
/// `holder` for `subject`, modelling an established session.
fn force_belief(sys: &mut BristleSystem, holder: Key, subject: Key) {
    let info = *sys.node_info(subject).expect("known");
    let addr = NetAddr::current(info.host, &sys.attachments);
    let (now, ttl) = (sys.clock.now(), sys.config().lease_ttl);
    sys.leases.grant(holder, subject, now, ttl);
    sys.mobile.node_mut(holder).expect("known").upsert_entry(StatePair::resolved(subject, addr));
}

/// With a perfect transport, the message-passing route produces exactly
/// the per-kind meter counts and costs of the synchronous
/// `route_mobile` on a twin system built from the same seed.
#[test]
fn perfect_transport_matches_function_call_meter_exactly() {
    for seed in [42u64, 7, 1234] {
        let mut fn_sys = build(seed);
        let msg_sys = build(seed);

        // Identical builds: pick the pair once, valid for both.
        let src = fn_sys.stationary_keys()[0];
        let target = fn_sys.mobile_keys()[0];

        let before = counts(&fn_sys.meter);
        assert_eq!(
            before,
            counts(&msg_sys.meter),
            "twin builds must start identical (seed {seed})"
        );

        fn_sys.route_mobile(src, target).expect("function-call route");
        let want = delta(&before, &fn_sys.meter);

        let mut mbs = MessagingBristleSystem::new(msg_sys, FaultConfig::perfect(), 99);
        mbs.route(src, target).expect("messaging route");
        mbs.settle();
        let got = delta(&before, &mbs.sys.meter);

        assert_eq!(want, got, "per-kind meter deltas diverge on seed {seed}");
        let zero = |k| got.iter().find(|&&(g, _, _)| g == k).map(|&(_, c, _)| c).unwrap_or(0);
        assert_eq!(zero(MessageKind::Timeout), 0, "no timeouts on a perfect network");
        assert_eq!(zero(MessageKind::DiscoveryRetry), 0, "no retries on a perfect network");
    }
}

/// The acceptance scenario: 20% loss, and the target moves routers one
/// micro-tick after the forward to its (believed-fresh) address is
/// sent. The bytes black-hole, retransmissions time out, and the hop
/// recovers through a `_discovery` — visible as a DiscoveryRetry.
#[test]
fn lossy_route_with_midflight_move_recovers_via_discovery() {
    let sys = build(42);
    let (src, target) = direct_pair(&sys);
    let mut mbs = MessagingBristleSystem::new(sys, FaultConfig::lossy(0.2), 7);

    force_belief(&mut mbs.sys, src, target);

    let old_router = mbs.sys.router_of(target).expect("known");
    let new_router = mbs
        .sys
        .stub_routers()
        .iter()
        .copied()
        .find(|&r| r != old_router)
        .expect("another stub router exists");
    let t0 = mbs.micro_now();
    mbs.schedule_move(SimTime(t0.0 + 1), target, Some(new_router));

    let before = counts(&mbs.sys.meter);
    let report = mbs.route(src, target).expect("route recovers through the stationary layer");
    assert!(report.events > 0);

    let d = delta(&before, &mbs.sys.meter);
    let count = |k| d.iter().find(|&&(g, _, _)| g == k).map(|&(_, c, _)| c).unwrap_or(0);
    assert!(count(MessageKind::Timeout) >= 1, "the black-holed hop must time out");
    assert!(count(MessageKind::DiscoveryRetry) >= 1, "recovery must go through _discovery");
}

/// A fully lossy network terminates with a route error, never a hang:
/// hop retries exhaust, the rediscovery fallback exhausts too, and the
/// machine reports failure.
#[test]
fn total_loss_fails_cleanly_instead_of_hanging() {
    let sys = build(42);
    let src = sys.stationary_keys()[0];
    let target = sys.mobile_keys()[0];
    let mut mbs = MessagingBristleSystem::new(sys, FaultConfig::lossy(1.0), 7);
    match mbs.route(src, target) {
        Err(MessagingError::RouteFailed { origin, .. }) => assert_eq!(origin, src),
        other => panic!("expected RouteFailed under total loss, got {other:?}"),
    }
    assert!(mbs.sys.meter.count(MessageKind::Timeout) >= 1);
}

/// The same transport seed and fault schedule yield a byte-identical
/// transport trace across runs; a different seed diverges.
#[test]
fn same_seed_produces_identical_transport_trace() {
    let faults = FaultConfig {
        drop_probability: 0.3,
        duplicate_probability: 0.1,
        min_latency: 1,
        jitter: 5,
    };
    let run = |transport_seed: u64| {
        let sys = build(42);
        let src = sys.stationary_keys()[0];
        let target = sys.mobile_keys()[0];
        let mut mbs = MessagingBristleSystem::new(sys, faults.clone(), transport_seed);
        let _ = mbs.route(src, target);
        mbs.settle();
        mbs.transport().trace_bytes()
    };
    let a = run(7);
    let b = run(7);
    assert!(!a.is_empty(), "the run must actually send messages");
    assert_eq!(a, b, "same seed must replay byte-identically");
    let c = run(8);
    assert_ne!(a, c, "a different fault seed must perturb the trace");
}
