//! Acceptance tests for the adversarial overlay
//! ([`bristle::core::auth`] + [`bristle::sim::adversary`]).
//!
//! The headline claims, pinned at the two CI seeds: with verification
//! off every scripted attack family lands, under enforcement every one
//! is stopped cold (success rate exactly zero), log-only observes
//! without dropping, and enforcement costs honest traffic nothing.

use bristle::core::auth::VerifyPolicy;
use bristle::sim::adversary::{run_attack, AttackConfig, ALL_FAMILIES};

/// The two fixed seeds CI runs.
const CI_SEEDS: [u64; 2] = [8, 27];

#[test]
fn every_attack_family_succeeds_unverified_at_both_ci_seeds() {
    for seed in CI_SEEDS {
        for family in ALL_FAMILIES {
            let out = run_attack(&AttackConfig::standard(seed, family, VerifyPolicy::Off));
            assert!(out.attempts > 0, "seed {seed} {}: no frames fired", family.name());
            assert!(
                out.successes > 0,
                "seed {seed} {}: attack must land with verification off: {out:?}",
                family.name()
            );
        }
    }
}

#[test]
fn enforcement_zeroes_every_attack_family_at_both_ci_seeds() {
    for seed in CI_SEEDS {
        for family in ALL_FAMILIES {
            let out = run_attack(&AttackConfig::standard(seed, family, VerifyPolicy::Enforce));
            assert!(out.attempts > 0, "seed {seed} {}: no frames fired", family.name());
            assert_eq!(
                out.successes,
                0,
                "seed {seed} {}: enforcement must stop the attack: {out:?}",
                family.name()
            );
            assert!(
                out.forged_frames > 0 && out.auth_rejects > 0,
                "seed {seed} {}: rejections must be metered: {out:?}",
                family.name()
            );
        }
    }
}

#[test]
fn log_only_meters_every_forgery_without_dropping_at_both_ci_seeds() {
    for seed in CI_SEEDS {
        for family in ALL_FAMILIES {
            let out = run_attack(&AttackConfig::standard(seed, family, VerifyPolicy::LogOnly));
            assert!(
                out.successes > 0,
                "seed {seed} {}: log-only must not block: {out:?}",
                family.name()
            );
            assert!(
                out.forged_frames >= out.attempts,
                "seed {seed} {}: every attack frame must be metered: {out:?}",
                family.name()
            );
            assert_eq!(
                out.auth_rejects,
                0,
                "seed {seed} {}: log-only must drop nothing: {out:?}",
                family.name()
            );
        }
    }
}

#[test]
fn enforcement_never_hurts_honest_delivery_at_both_ci_seeds() {
    for seed in CI_SEEDS {
        for family in ALL_FAMILIES {
            let off = run_attack(&AttackConfig::standard(seed, family, VerifyPolicy::Off));
            let enforce = run_attack(&AttackConfig::standard(seed, family, VerifyPolicy::Enforce));
            assert_eq!(
                (enforce.honest_pre_delivered, enforce.honest_pre_attempted),
                (off.honest_pre_delivered, off.honest_pre_attempted),
                "seed {seed} {}: pre-attack delivery must not depend on the policy",
                family.name()
            );
            assert!(
                enforce.post_rate() >= off.post_rate(),
                "seed {seed} {}: enforcement degraded post-attack delivery \
                 ({:.3} < {:.3})",
                family.name(),
                enforce.post_rate(),
                off.post_rate()
            );
        }
    }
}

/// Determinism: the whole adversarial scenario — build, staging,
/// volley, settle, measurement — replays identically from the same
/// seed under every policy.
#[test]
fn same_seed_attack_runs_are_identical() {
    for family in ALL_FAMILIES {
        for policy in [VerifyPolicy::Off, VerifyPolicy::LogOnly, VerifyPolicy::Enforce] {
            let cfg = AttackConfig::standard(CI_SEEDS[0], family, policy);
            assert_eq!(
                run_attack(&cfg),
                run_attack(&cfg),
                "{} under {:?} diverged",
                family.name(),
                policy
            );
        }
    }
}
