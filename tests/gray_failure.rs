//! Acceptance tests for gray-failure resilience
//! ([`bristle::sim::degradation`]).
//!
//! The headline scenario: a spread of stationary nodes scripted
//! fail-slow (3× latency), one asymmetric lossy link, bounded ingress
//! queues, and flash-crowd route waves. Under that script, at seeds 8
//! and 27:
//!
//! * no degraded-but-alive peer is ever wrongfully buried, in either
//!   retry arm — slow must never look like dead;
//! * the one genuinely crashed node is still confirmed and healed
//!   while the degradation is active — dead must never look like slow;
//! * the adaptive per-peer RTO fires strictly fewer spurious
//!   retransmissions than the fixed retry timers on the identical
//!   script, and sheds no more frames at the bounded queues.

use bristle::sim::degradation::{run_degradation, DegradationConfig};

/// The two acceptance seeds: 8 (the committed-report seed) and 27.
const SEEDS: [u64; 2] = [8, 27];

fn arms(
    seed: u64,
) -> (bristle::sim::degradation::DegradationOutcome, bristle::sim::degradation::DegradationOutcome)
{
    let mut cfg = DegradationConfig::standard(seed);
    cfg.adaptive = false;
    let fixed = run_degradation(&cfg);
    cfg.adaptive = true;
    let adaptive = run_degradation(&cfg);
    (fixed, adaptive)
}

#[test]
fn slowdown_never_buries_a_living_peer_in_either_arm() {
    for seed in SEEDS {
        let (fixed, adaptive) = arms(seed);
        assert_eq!(fixed.wrongful_burials, 0, "fixed arm buried a living peer at seed {seed}");
        assert_eq!(
            adaptive.wrongful_burials, 0,
            "adaptive arm buried a living peer at seed {seed}"
        );
        // The detector's evidence standard must not go soft either: the
        // scripted real crash is confirmed in both arms.
        assert!(fixed.crash_confirmed, "fixed arm missed the real crash at seed {seed}");
        assert!(adaptive.crash_confirmed, "adaptive arm missed the real crash at seed {seed}");
    }
}

#[test]
fn adaptive_rto_cuts_spurious_retransmissions_under_slowdown() {
    for seed in SEEDS {
        let (fixed, adaptive) = arms(seed);
        assert!(
            fixed.spurious_retries > 0,
            "the fixed timers should misfire under 3x slowdown at seed {seed}: {fixed:?}"
        );
        assert!(
            adaptive.spurious_retries < fixed.spurious_retries,
            "adaptive ({}) must fire strictly fewer spurious retries than fixed ({}) at seed {seed}",
            adaptive.spurious_retries,
            fixed.spurious_retries,
        );
        assert!(
            adaptive.load_sheds <= fixed.load_sheds,
            "adaptive ({}) must shed no more than fixed ({}) at seed {seed}",
            adaptive.load_sheds,
            fixed.load_sheds,
        );
    }
}

#[test]
fn health_score_flags_degraded_peers() {
    for seed in SEEDS {
        let (fixed, adaptive) = arms(seed);
        assert!(fixed.degraded_flagged_max > 0, "no degraded peer flagged at seed {seed}");
        assert!(adaptive.degraded_flagged_max > 0, "no degraded peer flagged at seed {seed}");
    }
}

#[test]
fn degradation_run_is_deterministic() {
    let cfg = DegradationConfig::standard(27);
    assert_eq!(run_degradation(&cfg), run_degradation(&cfg));
}
