//! Acceptance tests for crash-restart durability
//! ([`bristle::store`] + [`bristle::sim::durability`]).
//!
//! The headline scenario: the busiest record primary is WAL-backed,
//! killed silently, detected and buried by the heartbeat machinery, and
//! then restarted from its durable store. The restart must recover the
//! full shard it held at crash time — records, registrations, a
//! strictly fresher incarnation — off disk, with zero `Replicate`
//! traffic; and on the same seed the log-replay rejoin must settle with
//! strictly fewer republication messages than the blank-disk rejoin
//! path that re-learns the shard from the surviving replicas.

use std::collections::BTreeMap;

use bristle::core::config::BristleConfig;
use bristle::core::location::LocationRecord;
use bristle::core::system::{BristleBuilder, BristleSystem};
use bristle::netsim::transit_stub::TransitStubConfig;
use bristle::overlay::key::Key;
use bristle::overlay::meter::MessageKind;
use bristle::proto::transport::FaultConfig;
use bristle::sim::durability::{run_durability, DurabilityConfig, RestartMode};
use bristle::sim::messaging::MessagingBristleSystem;
use bristle::store::WalBackend;

/// The two fixed seeds CI runs; both produce a victim with a non-empty
/// shard and a strict restart-vs-republish traffic gap.
const CI_SEEDS: [u64; 2] = [8, 27];

/// The stationary node holding the most location records (ties break
/// toward the smaller key for determinism).
fn busiest_primary(sys: &BristleSystem) -> Key {
    let mut best = (0usize, Key(u64::MAX));
    for &s in sys.stationary_keys() {
        let n = sys.stationary.node(s).map(|node| node.store.len()).unwrap_or(0);
        if n > best.0 || (n == best.0 && s < best.1) {
            best = (n, s);
        }
    }
    best.1
}

fn scratch(name: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("bristle-crash-restart-test-{}", std::process::id()))
        .join(format!("{name}-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Hand-driven crash-restart: kill a WAL-backed record primary through
/// the messaging driver, let detection harden and the funeral run, then
/// restart from the store and check the recovered state field by field.
fn assert_shard_recovers(seed: u64) {
    let dir = scratch("shard", seed);
    let sys = BristleBuilder::new(seed)
        .stationary_nodes(40)
        .mobile_nodes(16)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds");
    let mut msys = MessagingBristleSystem::new(sys, FaultConfig::perfect(), seed);

    let victim = busiest_primary(&msys.sys);
    msys.sys.stores.attach_wal(victim, WalBackend::open(&dir, 8).expect("WAL opens"));

    // Warm-up mobility so the WAL holds live history, not just the
    // build-time state.
    for i in 0..6 {
        let m = msys.sys.mobile_keys()[i % msys.sys.mobile_keys().len()];
        msys.sys.move_node(m, None).expect("mover is live");
    }

    let shard: BTreeMap<Key, LocationRecord> = msys
        .sys
        .stationary
        .node(victim)
        .expect("victim is a live primary")
        .store
        .iter()
        .map(|(&k, &r)| (k, r))
        .collect();
    assert!(!shard.is_empty(), "seed {seed}: victim must hold records for the test to bite");
    let edges: Vec<Key> = msys
        .sys
        .registry
        .iter()
        .filter(|(_, regs)| regs.iter().any(|r| r.key == victim))
        .map(|(target, _)| target)
        .collect();
    let buried_incarnation = msys.sys.node_info(victim).expect("victim is known").incarnation;

    // Crash silently; heartbeats must detect and confirm the death.
    msys.fail_silently(victim);
    let mut confirmed = false;
    for _ in 0..8 {
        if msys.heartbeat_round().contains(&victim) {
            msys.confirm_and_heal(victim).expect("victim is known");
            confirmed = true;
            break;
        }
    }
    assert!(confirmed, "seed {seed}: the crash was never detected");
    assert!(msys.sys.is_confirmed_dead(victim));
    assert!(msys.sys.stationary.node(victim).is_err(), "the shard died with the corpse");

    // Restart from the store: the shard comes off disk, not the network.
    let replicate_before = msys.sys.meter.count(MessageKind::Replicate);
    let report = msys.crash_restart(victim).expect("victim restarts");
    assert!(report.restored, "seed {seed}: a confirmed corpse must restart");
    let replay = report.replay.as_ref().expect("a WAL-backed node replays its log");
    assert!(
        replay.snapshot_records + replay.log_records > 0,
        "seed {seed}: the replay read nothing"
    );
    assert_eq!(
        msys.sys.meter.count(MessageKind::Replicate),
        replicate_before,
        "seed {seed}: shard recovery must be local — no Replicate traffic"
    );

    // (a) Full shard back, record for record.
    assert_eq!(report.records_recovered, shard.len(), "seed {seed}: {report:?}");
    let restored = msys.sys.stationary.node(victim).expect("victim lives again");
    for (subject, record) in &shard {
        assert_eq!(
            restored.store.get(subject),
            Some(record),
            "seed {seed}: record for {subject} did not survive the restart"
        );
    }
    // (b) Registration edges re-established from the persisted set.
    for target in &edges {
        assert!(
            msys.sys.registry.registrants_of(*target).iter().any(|r| r.key == victim),
            "seed {seed}: registration to {target} did not survive the restart"
        );
    }
    // (c) The restart out-ranks both the funeral and the persisted life.
    assert!(
        report.incarnation > buried_incarnation,
        "seed {seed}: restart incarnation must out-rank the burial"
    );
    assert_eq!(msys.sys.node_info(victim).expect("known").incarnation, report.incarnation);
    assert!(!msys.sys.is_confirmed_dead(victim));

    // One anti-entropy pass settles anything the disk missed; a second
    // finds nothing.
    msys.sys.anti_entropy_locations().expect("reconciliation succeeds");
    assert_eq!(msys.sys.anti_entropy_locations().expect("second pass"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same seed, two recovery paths: the WAL replay must settle with
/// strictly fewer `Replicate` messages (the metered republication
/// traffic) than the blank-disk rejoin.
fn assert_replay_beats_republication(seed: u64) {
    let republish = run_durability(&DurabilityConfig::standard(seed, RestartMode::Republish));
    let replay = run_durability(&DurabilityConfig::standard(seed, RestartMode::WalReplay));
    assert_eq!(replay.victim, republish.victim, "seed {seed}: same seed, same victim");
    assert!(republish.victim_shard > 0, "seed {seed}: victim held nothing: {republish:?}");
    assert_eq!(republish.records_recovered, 0, "seed {seed}: the baseline comes back empty");
    assert_eq!(
        replay.records_recovered + replay.records_skipped,
        replay.victim_shard,
        "seed {seed}: every crash-time record is accounted for: {replay:?}"
    );
    assert!(
        replay.recovery_replicates < republish.recovery_replicates,
        "seed {seed}: log replay ({} Replicates) must beat republication ({})",
        replay.recovery_replicates,
        republish.recovery_replicates
    );
    assert!(republish.converged, "seed {seed}: baseline never converged: {republish:?}");
    assert!(replay.converged, "seed {seed}: WAL restart never converged: {replay:?}");
}

/// A node that sleeps through every lease it held must come back
/// *clean*: no resurrected leases, no registrations to targets that
/// died during the outage — and it must be able to re-acquire both
/// through the normal protocol afterwards.
fn assert_expired_leases_do_not_resurrect(seed: u64) {
    let dir = scratch("expired-leases", seed);
    let sys = BristleBuilder::new(seed)
        .stationary_nodes(40)
        .mobile_nodes(16)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds");
    let lease_ttl = sys.config().lease_ttl;
    let mut msys = MessagingBristleSystem::new(sys, FaultConfig::perfect(), seed);

    // The victim registers with two live targets, holding a lease on
    // each; one target will die during the victim's outage.
    let mobiles: Vec<Key> = msys.sys.mobile_keys().to_vec();
    let (victim, target, doomed) = (mobiles[0], mobiles[1], mobiles[2]);
    msys.sys.stores.attach_wal(victim, WalBackend::open(&dir, 8).expect("WAL opens"));
    msys.register(victim, target).expect("registration completes");
    msys.register(victim, doomed).expect("registration completes");
    assert!(msys.sys.leases.is_fresh(victim, target, msys.sys.clock.now()));
    assert!(msys.sys.leases.is_fresh(victim, doomed, msys.sys.clock.now()));

    // Crash, bury, and let the whole outage outlive every lease.
    msys.seed_monitors();
    msys.fail_silently(victim);
    let mut confirmed = false;
    for _ in 0..8 {
        if msys.heartbeat_round().contains(&victim) {
            confirmed = true;
            break;
        }
        msys.sys.tick(1);
    }
    assert!(confirmed, "seed {seed}: the crash was never detected");
    msys.confirm_and_heal(victim).expect("victim is known");
    // One of the victim's targets dies while the victim is down.
    msys.fail_silently(doomed);
    msys.confirm_and_heal(doomed).expect("doomed target is known");
    msys.sys.tick(lease_ttl + 1);

    let report = msys.crash_restart(victim).expect("victim restarts");
    assert!(report.restored, "seed {seed}: a confirmed corpse must restart");
    // (a) Clean restart: every persisted lease lapsed during the
    // outage, so none may resume *off disk*.
    assert_eq!(report.leases_restored, 0, "seed {seed}: expired leases resurrected: {report:?}");
    // (b) No phantom state toward the target that died during the
    // outage: its registration edge is dropped as stale and no lease
    // on it can be re-acquired (there is nobody left to grant one).
    assert!(report.registrations_stale >= 1, "seed {seed}: dead-target edge kept: {report:?}");
    assert!(
        !msys.sys.registry.registrants_of(doomed).iter().any(|r| r.key == victim),
        "seed {seed}: phantom registration to a dead target"
    );
    assert!(
        !msys.sys.leases.is_fresh(victim, doomed, msys.sys.clock.now()),
        "seed {seed}: a lease on a dead target came back fresh"
    );
    // (c) Toward the live target everything re-acquires through the
    // normal protocol: the registration edge is re-established from
    // the persisted set, and the restart's LDT re-advertisement grants
    // a *fresh* lease (normal update-path acquisition, not a disk
    // resumption — (a) proved the disk contributed none).
    assert!(
        msys.sys.registry.registrants_of(target).iter().any(|r| r.key == victim),
        "seed {seed}: live-target registration must survive the restart"
    );
    assert!(
        msys.sys.leases.is_fresh(victim, target, msys.sys.clock.now()),
        "seed {seed}: the victim could not re-acquire a lease after restart"
    );
    // And an explicit re-registration still works end to end.
    msys.register(victim, target).expect("re-registration completes");
    assert!(msys.sys.leases.is_fresh(victim, target, msys.sys.clock.now()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_restarted_primary_recovers_its_shard_seed_a() {
    assert_shard_recovers(CI_SEEDS[0]);
}

#[test]
fn restart_with_every_lease_expired_is_clean_seed_a() {
    assert_expired_leases_do_not_resurrect(CI_SEEDS[0]);
}

#[test]
fn restart_with_every_lease_expired_is_clean_seed_b() {
    assert_expired_leases_do_not_resurrect(CI_SEEDS[1]);
}

#[test]
fn crash_restarted_primary_recovers_its_shard_seed_b() {
    assert_shard_recovers(CI_SEEDS[1]);
}

#[test]
fn log_replay_rejoin_beats_full_republication_seed_a() {
    assert_replay_beats_republication(CI_SEEDS[0]);
}

#[test]
fn log_replay_rejoin_beats_full_republication_seed_b() {
    assert_replay_beats_republication(CI_SEEDS[1]);
}

/// Determinism: the whole scenario — warm-up, crash, detection, WAL
/// round-trip, restart, reconciliation — replays identically from the
/// same seed, meter tallies included.
#[test]
fn same_seed_durability_runs_agree_on_every_meter_tally() {
    for seed in CI_SEEDS {
        let cfg = DurabilityConfig::standard(seed, RestartMode::WalReplay);
        assert_eq!(run_durability(&cfg), run_durability(&cfg), "seed {seed} diverged");
    }
}
