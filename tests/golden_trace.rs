//! Golden-trace test for the observability layer: a fixed-seed lossy
//! route with a mid-flight move is replayed, and the flight recorder's
//! event sequence plus the latency-histogram snapshots are compared
//! line-for-line against a checked-in golden file.
//!
//! The scenario is the acceptance route from `messaging_integration.rs`:
//! the target moves routers one micro-tick after the forward to its
//! believed-fresh address is sent, the bytes black-hole, retransmissions
//! time out, and the hop recovers through a `_discovery`. Every event in
//! that story — sends, timeouts, the discovery session, the final
//! delivery — carries the *same causal trace id* as the route that
//! provoked it, which is what the correlation assertions pin.
//!
//! To regenerate after an intentional protocol change:
//!
//! ```text
//! BRISTLE_UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```

use std::path::PathBuf;

use bristle::core::config::BristleConfig;
use bristle::core::system::{BristleBuilder, BristleSystem};
use bristle::core::time::SimTime;
use bristle::netsim::transit_stub::TransitStubConfig;
use bristle::overlay::addr::{NetAddr, StatePair};
use bristle::overlay::key::Key;
use bristle::overlay::obs::{ObsEvent, ObsEventKind};
use bristle::proto::transport::FaultConfig;
use bristle::sim::messaging::MessagingBristleSystem;

fn build(seed: u64) -> BristleSystem {
    BristleBuilder::new(seed)
        .stationary_nodes(40)
        .mobile_nodes(12)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds")
}

/// A pair whose mobile-layer route is a single direct hop to a mobile
/// target, so the staged move provably races the in-flight forward.
fn direct_pair(sys: &BristleSystem) -> (Key, Key) {
    for &target in sys.mobile_keys() {
        for src in sys.mobile.keys() {
            if src != target && sys.mobile.next_hop(src, target).ok().flatten() == Some(target) {
                return (src, target);
            }
        }
    }
    panic!("no direct mobile pair in this population");
}

/// Installs a fresh (but about-to-be-stale) resolved state-pair at
/// `holder` for `subject`, modelling an established session.
fn force_belief(sys: &mut BristleSystem, holder: Key, subject: Key) {
    let info = *sys.node_info(subject).expect("known");
    let addr = NetAddr::current(info.host, &sys.attachments);
    let (now, ttl) = (sys.clock.now(), sys.config().lease_ttl);
    sys.leases.grant(holder, subject, now, ttl);
    sys.mobile.node_mut(holder).expect("known").upsert_entry(StatePair::resolved(subject, addr));
}

/// One event as one stable golden line. Trace ids are seeded-deterministic
/// (key × counter hash), so they are reproducible and safe to pin.
fn fmt_event(e: &ObsEvent) -> String {
    let kind = match e.kind {
        ObsEventKind::Send { to, tag, msg_id } => format!("send to={to} tag={tag} msg_id={msg_id}"),
        ObsEventKind::Ack { from, msg_id } => format!("ack from={from} msg_id={msg_id}"),
        ObsEventKind::Timeout { what, attempt } => format!("timeout what={what} attempt={attempt}"),
        ObsEventKind::Suspect { peer, incarnation } => {
            format!("suspect peer={peer} incarnation={incarnation}")
        }
        ObsEventKind::Refute { incarnation } => format!("refute incarnation={incarnation}"),
        ObsEventKind::RouteDelivered { route_id } => format!("route_delivered route_id={route_id}"),
        ObsEventKind::RouteFailed { route_id } => format!("route_failed route_id={route_id}"),
        ObsEventKind::DiscoveryStart { subject } => format!("discovery_start subject={subject}"),
        ObsEventKind::DiscoveryResolved { subject, elapsed } => {
            format!("discovery_resolved subject={subject} elapsed={elapsed}")
        }
        ObsEventKind::DiscoveryFailed { subject, elapsed } => {
            format!("discovery_failed subject={subject} elapsed={elapsed}")
        }
        ObsEventKind::AuthReject { from, tag, reason, dropped } => {
            format!("auth_reject from={from} tag={tag} reason={reason} dropped={dropped}")
        }
    };
    format!("at={} trace={:016x} node={} {}", e.at, e.trace, e.node, kind)
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/messaging_trace.golden")
}

/// Runs the fixed scenario and renders the full golden document.
fn run_scenario() -> (String, Vec<ObsEvent>) {
    let sys = build(42);
    let (src, target) = direct_pair(&sys);
    let mut mbs = MessagingBristleSystem::new(sys, FaultConfig::lossy(0.2), 7);
    force_belief(&mut mbs.sys, src, target);

    let old_router = mbs.sys.router_of(target).expect("known");
    let new_router = mbs
        .sys
        .stub_routers()
        .iter()
        .copied()
        .find(|&r| r != old_router)
        .expect("another stub router exists");
    let t0 = mbs.micro_now();
    mbs.schedule_move(SimTime(t0.0 + 1), target, Some(new_router));

    mbs.route(src, target).expect("route recovers through the stationary layer");

    let events = mbs.obs().flight.events();
    let mut doc = String::new();
    doc.push_str("# golden messaging trace: seed 42, loss 0.2, transport seed 7\n");
    doc.push_str(&format!("# src={src} target={target} moved_to={new_router:?}\n"));
    for e in &events {
        doc.push_str(&fmt_event(e));
        doc.push('\n');
    }
    doc.push_str("# latency snapshots (count/p50/p99/max, micro-ticks)\n");
    for (name, s) in mbs.obs().latency_snapshots() {
        doc.push_str(&format!(
            "hist {name} count={} p50={} p99={} max={}\n",
            s.count, s.p50, s.p99, s.max
        ));
    }
    (doc, events)
}

#[test]
fn flight_recorder_trace_matches_golden() {
    let (doc, _) = run_scenario();
    let path = golden_path();
    if std::env::var_os("BRISTLE_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &doc).expect("golden written");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("golden file present; run with BRISTLE_UPDATE_GOLDEN=1 to create it");
    // Compare line-by-line so a drift points at the first divergent event
    // instead of dumping both documents.
    for (i, (got, want)) in doc.lines().zip(want.lines()).enumerate() {
        assert_eq!(got, want, "trace diverges at line {}", i + 1);
    }
    assert_eq!(
        doc.lines().count(),
        want.lines().count(),
        "trace length changed (set BRISTLE_UPDATE_GOLDEN=1 to regenerate)"
    );
}

/// The causal-correlation acceptance: the route's trace id appears on its
/// RouteHop sends, on the hop timeouts, on the `_discovery` session the
/// stale hop falls back to, and on the final delivery — one id tells the
/// whole recovery story.
#[test]
fn route_trace_correlates_hops_timeouts_and_discovery() {
    let (_, events) = run_scenario();

    // The route's trace is the one on the delivery milestone.
    let route_trace = events
        .iter()
        .find_map(|e| match e.kind {
            ObsEventKind::RouteDelivered { .. } => Some(e.trace),
            _ => None,
        })
        .expect("the route must deliver");
    assert_ne!(route_trace, 0, "operations get a nonzero trace");

    let with_trace: Vec<&ObsEvent> = events.iter().filter(|e| e.trace == route_trace).collect();
    let has = |pred: &dyn Fn(&ObsEvent) -> bool| with_trace.iter().any(|e| pred(e));

    assert!(
        has(&|e| matches!(e.kind, ObsEventKind::Send { tag: "RouteHop", .. })),
        "route hops carry the route's trace"
    );
    assert!(
        has(&|e| matches!(e.kind, ObsEventKind::Timeout { what: "hop", .. })),
        "black-holed hop retries carry the route's trace"
    );
    assert!(
        has(&|e| matches!(e.kind, ObsEventKind::DiscoveryStart { .. })),
        "the fallback discovery session inherits the route's trace"
    );
    assert!(
        has(&|e| matches!(e.kind, ObsEventKind::Send { tag: "Discovery", .. })),
        "discovery frames inherit the route's trace"
    );
    assert!(
        has(&|e| matches!(e.kind, ObsEventKind::DiscoveryResolved { .. })),
        "the resolution milestone carries the route's trace"
    );

    // Background traffic (heartbeats, obituaries) is trace 0 and there is
    // none in this scenario; every event belongs to *some* operation.
    assert!(events.iter().all(|e| e.trace != 0), "no background traffic in a single route");
}
