//! Sim-vs-socket conformance: the seed-scripted messaging scenario run
//! over the in-memory `SimTransport` and over real UDP loopback sockets
//! must produce identical per-kind meter tallies and the same causal
//! (trace-id-grouped) event sequence. See `bristle::sim::conformance`
//! for the scenario and the normalization rules.
//!
//! A third check pins the golden messaging trace byte-for-byte: the net
//! runtime rides along in this PR, and the proof that it changed no
//! simulator semantics is that the golden file still matches.

use std::path::PathBuf;

use bristle::core::config::BristleConfig;
use bristle::core::system::{BristleBuilder, BristleSystem};
use bristle::core::time::SimTime;
use bristle::netsim::transit_stub::TransitStubConfig;
use bristle::overlay::addr::{NetAddr, StatePair};
use bristle::overlay::key::Key;
use bristle::overlay::obs::{ObsEvent, ObsEventKind};
use bristle::proto::transport::FaultConfig;
use bristle::sim::conformance::{run_sim, run_sockets};
use bristle::sim::messaging::MessagingBristleSystem;

fn conformance_at(seed: u64) {
    let sim = run_sim(seed);
    let net = run_sockets(seed);
    assert_eq!(
        sim.tallies, net.tallies,
        "per-kind meter tallies diverge between SimTransport and loopback sockets (seed {seed})"
    );
    // Compare profiles line-by-line so a drift points at the first
    // divergent trace instead of dumping both documents.
    for (i, (s, n)) in sim.profile.lines().zip(net.profile.lines()).enumerate() {
        assert_eq!(s, n, "causal profile diverges at line {} (seed {seed})", i + 1);
    }
    assert_eq!(
        sim.profile.lines().count(),
        net.profile.lines().count(),
        "causal profile length diverges (seed {seed})"
    );
}

#[test]
fn sim_and_sockets_agree_at_seed_8() {
    conformance_at(8);
}

#[test]
fn sim_and_sockets_agree_at_seed_27() {
    conformance_at(27);
}

/// The tallies are not vacuous: the scenario exercises registration,
/// updates, routes, and the stale-belief recovery through `_discovery`
/// in both arms. (The *timeout* ladder needs a mid-flight move, which
/// conformance scenarios exclude by design — that is the condition
/// under which the sim's arrival-time black-hole and the socket
/// driver's send-time check are equivalent. The socket-side retry
/// ladder is pinned by `bristle-net`'s driver unit tests instead.)
#[test]
fn the_scenario_exercises_the_recovery_paths() {
    use bristle::overlay::meter::MessageKind;
    let sim = run_sim(8);
    let count = |k: MessageKind| {
        sim.tallies.iter().find(|(kind, _, _)| *kind == k).map(|&(_, c, _)| c).unwrap_or(0)
    };
    assert!(count(MessageKind::Register) >= 2, "both watchers register");
    assert!(count(MessageKind::Update) >= 1, "the move is disseminated");
    assert!(count(MessageKind::RouteHop) >= 3, "routes (plus the wasted stale hop) flow");
    assert!(count(MessageKind::DiscoveryHop) >= 1, "recovery goes through _discovery");
    assert_eq!(count(MessageKind::SpuriousRetry), 0, "a clean run wastes no retransmissions");
    assert_eq!(count(MessageKind::MalformedFrame), 0, "clean runs drop nothing at the boundary");
}

// ---- golden-trace byte-identity (scenario duplicated from
// golden_trace.rs so this suite pins it independently) ----

fn build(seed: u64) -> BristleSystem {
    BristleBuilder::new(seed)
        .stationary_nodes(40)
        .mobile_nodes(12)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds")
}

fn direct_pair(sys: &BristleSystem) -> (Key, Key) {
    for &target in sys.mobile_keys() {
        for src in sys.mobile.keys() {
            if src != target && sys.mobile.next_hop(src, target).ok().flatten() == Some(target) {
                return (src, target);
            }
        }
    }
    panic!("no direct mobile pair in this population");
}

fn force_belief(sys: &mut BristleSystem, holder: Key, subject: Key) {
    let info = *sys.node_info(subject).expect("known");
    let addr = NetAddr::current(info.host, &sys.attachments);
    let (now, ttl) = (sys.clock.now(), sys.config().lease_ttl);
    sys.leases.grant(holder, subject, now, ttl);
    sys.mobile.node_mut(holder).expect("known").upsert_entry(StatePair::resolved(subject, addr));
}

fn fmt_event(e: &ObsEvent) -> String {
    let kind = match e.kind {
        ObsEventKind::Send { to, tag, msg_id } => format!("send to={to} tag={tag} msg_id={msg_id}"),
        ObsEventKind::Ack { from, msg_id } => format!("ack from={from} msg_id={msg_id}"),
        ObsEventKind::Timeout { what, attempt } => format!("timeout what={what} attempt={attempt}"),
        ObsEventKind::Suspect { peer, incarnation } => {
            format!("suspect peer={peer} incarnation={incarnation}")
        }
        ObsEventKind::Refute { incarnation } => format!("refute incarnation={incarnation}"),
        ObsEventKind::RouteDelivered { route_id } => format!("route_delivered route_id={route_id}"),
        ObsEventKind::RouteFailed { route_id } => format!("route_failed route_id={route_id}"),
        ObsEventKind::DiscoveryStart { subject } => format!("discovery_start subject={subject}"),
        ObsEventKind::DiscoveryResolved { subject, elapsed } => {
            format!("discovery_resolved subject={subject} elapsed={elapsed}")
        }
        ObsEventKind::DiscoveryFailed { subject, elapsed } => {
            format!("discovery_failed subject={subject} elapsed={elapsed}")
        }
        ObsEventKind::AuthReject { from, tag, reason, dropped } => {
            format!("auth_reject from={from} tag={tag} reason={reason} dropped={dropped}")
        }
    };
    format!("at={} trace={:016x} node={} {}", e.at, e.trace, e.node, kind)
}

/// The golden messaging trace is untouched by the net runtime: the
/// exact scenario of `golden_trace.rs`, re-rendered and compared
/// byte-for-byte against the checked-in file.
#[test]
fn golden_trace_is_byte_identical() {
    let sys = build(42);
    let (src, target) = direct_pair(&sys);
    let mut mbs = MessagingBristleSystem::new(sys, FaultConfig::lossy(0.2), 7);
    force_belief(&mut mbs.sys, src, target);

    let old_router = mbs.sys.router_of(target).expect("known");
    let new_router = mbs
        .sys
        .stub_routers()
        .iter()
        .copied()
        .find(|&r| r != old_router)
        .expect("another stub router exists");
    let t0 = mbs.micro_now();
    mbs.schedule_move(SimTime(t0.0 + 1), target, Some(new_router));
    mbs.route(src, target).expect("route recovers through the stationary layer");

    let mut doc = String::new();
    doc.push_str("# golden messaging trace: seed 42, loss 0.2, transport seed 7\n");
    doc.push_str(&format!("# src={src} target={target} moved_to={new_router:?}\n"));
    for e in &mbs.obs().flight.events() {
        doc.push_str(&fmt_event(e));
        doc.push('\n');
    }
    doc.push_str("# latency snapshots (count/p50/p99/max, micro-ticks)\n");
    for (name, s) in mbs.obs().latency_snapshots() {
        doc.push_str(&format!(
            "hist {name} count={} p50={} p99={} max={}\n",
            s.count, s.p50, s.p99, s.max
        ));
    }

    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/messaging_trace.golden");
    let golden = std::fs::read_to_string(&path).expect("golden file present");
    assert_eq!(doc, golden, "the net runtime must not perturb the simulator's golden trace");
}
