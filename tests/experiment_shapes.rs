//! Shape assertions for every regenerated table and figure, at reduced
//! scale — the claims listed in DESIGN.md §4 / EXPERIMENTS.md, executable.

use bristle::netsim::transit_stub::TransitStubConfig;
use bristle::sim::experiments::{fig3, fig7, fig8, fig9, table1};

#[test]
fn figure3_shapes() {
    let cfg = fig3::Fig3Config {
        analytic_n: 1_048_576.0,
        measured_n: 200,
        fractions: vec![0.2, 0.5, 0.8],
        capacity_range: (1, 15),
        seed: 21,
    };
    let result = fig3::run(&cfg);
    // Non-member exceeds member-only everywhere, analytically and measured.
    for row in &result.rows {
        assert!(row.analytic.non_member > row.analytic.member_only);
        assert!(row.measured_non_member > row.measured_member);
    }
    // Super-linear growth in M/(N−M) for non-member (the "exponential"
    // growth remark): doubling the fraction more than doubles it.
    assert!(result.rows[2].measured_non_member > 2.0 * result.rows[0].measured_non_member);
}

#[test]
fn figure7_shapes() {
    let cfg = fig7::Fig7Config {
        n_stationary: 80,
        fractions: vec![0.0, 0.3, 0.5, 0.8],
        routes: 150,
        topology: TransitStubConfig::tiny(),
        seed: 22,
        parallel: true,
    };
    let result = fig7::run(&cfg);
    let rows = &result.rows;
    // (1) Clustered beats (or ties) scrambled at every point.
    for r in rows {
        assert!(r.clustered.hops <= r.scrambled.hops + 0.5, "M/N {}", r.fraction);
    }
    // (2) Scrambled degrades steeply with mobility.
    assert!(rows[3].scrambled.hops > rows[0].scrambled.hops * 1.6);
    // (3) RDP ≈ 1 with no mobiles, grows beyond it with them.
    assert!((rows[0].rdp_hops() - 1.0).abs() < 0.3);
    assert!(rows[3].rdp_hops() > 1.2);
    // (4) Hop-RDP and cost-RDP agree in direction (the paper: "closed").
    assert!((rows[3].rdp_hops() - rows[3].rdp_cost()).abs() < rows[3].rdp_hops());
}

#[test]
fn figure8_shapes() {
    let cfg = fig8::Fig8Config {
        n_nodes: 400,
        max_capacities: vec![1, 8, 15],
        tree_sample: Some(150),
        registrant_cap: None,
        detail_trees: 10,
        seed: 23,
    };
    let result = fig8::run(&cfg);
    let d = &result.distributions;
    // Depth shrinks monotonically in MAX at the sampled points.
    assert!(d[0].mean_depth > d[1].mean_depth);
    assert!(d[1].mean_depth >= d[2].mean_depth);
    // MAX = 1 degenerates toward chains; MAX = 15 toward 2–4 levels.
    assert!(d[0].max_depth > 10);
    assert!(d[2].mean_depth < 5.0);
    // Fig. 8(b): assignments concentrate on the capable members.
    let mut strong = 0usize;
    let mut weak = 0usize;
    for tree in &result.detail {
        if tree.len() >= 3 {
            strong += tree[1].assigned;
            weak += tree[tree.len() - 1].assigned;
        }
    }
    assert!(strong >= weak);
}

#[test]
fn figure9_shapes() {
    let cfg = fig9::Fig9Config {
        max_nodes: 240,
        fractions: vec![0.25, 1.0],
        capacity_range: (1, 15),
        tree_sample: Some(120),
        topology: TransitStubConfig::tiny(),
        seed: 24,
        parallel: true,
    };
    let result = fig9::run(&cfg);
    for r in &result.rows {
        assert!(r.cost_with_locality < r.cost_without_locality, "M/N {}", r.fraction);
    }
    // Density must not hurt the locality-aware trees.
    assert!(result.rows[1].cost_with_locality <= result.rows[0].cost_with_locality * 1.1);
}

#[test]
fn table1_shapes() {
    let cfg = table1::Table1Config {
        n_stationary: 60,
        n_mobile: 25,
        moves: 40,
        lookups: 60,
        agent_failure_prob: 0.2,
        move_interval: 25,
        topology: TransitStubConfig::tiny(),
        seed: 25,
    };
    let result = table1::run(&cfg);
    let (a, b, bristle) = (&result.systems[0], &result.systems[1], &result.systems[2]);
    assert_eq!(a.name, "Type A (plain IP)");
    assert_eq!(b.name, "Type B (mobile IP)");
    assert_eq!(bristle.name, "Bristle");
    // End-to-end semantics: Bristle yes, Type A no (paper Table 1's last row).
    assert!(bristle.session_survival > 0.95);
    assert_eq!(a.session_survival, 0.0);
    // Reliability: Type B dented by home-agent failures; Bristle is not.
    assert!(b.session_survival < 0.99);
    assert!(bristle.data_availability > b.data_availability);
    // Performance: Type B pays the triangle, Type A pays nothing,
    // Bristle sits at (or near) Type A's level thanks to clustered naming.
    assert!(b.path_stretch > 1.01);
    assert!(bristle.path_stretch < b.path_stretch);
    // Scalability: a Bristle move is cheaper than a Type A full rejoin…
    // (both are O(log N)-message class, but the rejoin also pays the
    // overlay join exchanges — allow equality plus margin).
    assert!(bristle.state_per_node > 0.0 && a.state_per_node > 0.0);
}
