//! End-to-end integration tests spanning all crates: physical network,
//! overlay substrate, Bristle protocol, and baselines.

use bristle::core::config::{BristleConfig, NamingPolicy};
use bristle::core::naming::Mobility;
use bristle::core::system::{BristleBuilder, BristleSystem};
use bristle::netsim::transit_stub::TransitStubConfig;
use bristle::overlay::key::Key;
use bristle::sim::baseline_type_a::TypeASystem;
use bristle::sim::baseline_type_b::TypeBSystem;

fn system(seed: u64, n_stat: usize, n_mob: usize) -> BristleSystem {
    BristleBuilder::new(seed)
        .stationary_nodes(n_stat)
        .mobile_nodes(n_mob)
        .topology(TransitStubConfig::small())
        .build()
        .expect("system builds")
}

#[test]
fn every_pair_is_mutually_routable() {
    let mut sys = system(1, 40, 20);
    let keys: Vec<Key> = sys.mobile.keys().collect();
    for i in (0..keys.len()).step_by(7) {
        for j in (0..keys.len()).step_by(11) {
            let rep = sys.route_mobile(keys[i], keys[j]).expect("route");
            assert_eq!(rep.terminus, sys.mobile.owner(keys[j]).expect("owner"));
        }
    }
}

#[test]
fn move_discover_route_cycle_many_times() {
    let mut sys = system(2, 50, 25);
    let watcher = sys.stationary_keys()[0];
    for round in 0..5 {
        for m in sys.mobile_keys().to_vec() {
            sys.move_node(m, None).expect("move");
        }
        for &m in sys.mobile_keys().to_vec().iter().take(8) {
            let disc = sys.discover(watcher, m).expect("discover");
            let addr = disc.resolved.expect("record exists");
            assert!(addr.is_valid(&sys.attachments), "round {round}: stale record served");
            let rep = sys.route_mobile(watcher, m).expect("route");
            assert_eq!(rep.terminus, m);
        }
    }
}

#[test]
fn stored_data_survives_arbitrary_movement() {
    let mut sys = system(3, 40, 30);
    let src = sys.stationary_keys()[0];
    let items: Vec<Key> = (0..50).map(|i| Key::hash_of(format!("item-{i}").as_bytes())).collect();
    for (i, &k) in items.iter().enumerate() {
        sys.store_data(src, k, vec![i as u8]).expect("store");
    }
    for _ in 0..3 {
        for m in sys.mobile_keys().to_vec() {
            sys.move_node(m, None).expect("move");
        }
    }
    for (i, &k) in items.iter().enumerate() {
        let (payload, _) = sys.fetch_data(src, k).expect("fetch");
        assert_eq!(payload, Some(vec![i as u8]), "item {i} lost");
    }
}

#[test]
fn join_leave_churn_preserves_routing_and_locations() {
    let mut sys = system(4, 40, 20);
    for i in 0..12 {
        if i % 3 == 0 {
            sys.join_node(Mobility::Stationary).expect("join stationary");
        } else {
            sys.join_node(Mobility::Mobile).expect("join mobile");
        }
        if i % 4 == 3 {
            let victim = sys.mobile_keys()[i % sys.mobile_keys().len()];
            sys.leave_node(victim).expect("leave");
        }
    }
    let watcher = sys.stationary_keys()[0];
    for &m in sys.mobile_keys().to_vec().iter().take(10) {
        let disc = sys.discover(watcher, m).expect("discover");
        assert!(disc.resolved.is_some(), "location lost through churn for {m}");
    }
}

#[test]
fn stationary_failures_tolerated_by_replication() {
    let mut sys = system(5, 60, 20);
    let m = sys.mobile_keys()[0];
    // Kill the stationary owner of m's location record; replicas answer.
    let owner = sys.stationary.owner(m).expect("owner");
    sys.fail_node(owner).expect("fail");
    let watcher = sys
        .stationary_keys()
        .iter()
        .copied()
        .find(|&s| s != owner)
        .expect("another stationary node");
    let disc = sys.discover(watcher, m).expect("discover");
    assert!(disc.resolved.is_some(), "replicas must cover the failed owner");
}

#[test]
fn late_binding_recovers_after_lease_expiry() {
    let mut sys = system(6, 40, 15);
    let watcher = sys.stationary_keys()[1];
    let m = sys.mobile_keys()[0];
    sys.route_mobile(watcher, m).expect("prime");
    // Expire everything, then move without the watcher hearing about it.
    let ttl = sys.config().lease_ttl;
    sys.tick(ttl + 1);
    sys.move_node(m, None).expect("move");
    sys.tick(ttl + 1);
    let rep = sys.route_mobile(watcher, m).expect("route");
    assert_eq!(rep.terminus, m, "late binding must still deliver");
}

#[test]
fn meter_accounts_every_operation() {
    use bristle::overlay::meter::MessageKind;
    let mut sys = system(7, 30, 10);
    let before_updates = sys.meter.count(MessageKind::Update);
    let before_publish = sys.meter.count(MessageKind::Publish);
    let m = sys.mobile_keys()[0];
    sys.move_node(m, None).expect("move");
    assert!(sys.meter.count(MessageKind::Publish) > before_publish);
    assert!(sys.meter.count(MessageKind::Update) >= before_updates);
    let before_disc = sys.meter.count(MessageKind::DiscoveryHop);
    let watcher = sys.stationary_keys()[0];
    sys.discover(watcher, m).expect("discover");
    assert!(sys.meter.count(MessageKind::DiscoveryHop) > before_disc);
}

#[test]
fn scrambled_systems_also_deliver_just_slower() {
    let build = |policy| {
        let cfg = match policy {
            NamingPolicy::Scrambled => BristleConfig::paper_scrambled(),
            NamingPolicy::Clustered => BristleConfig::paper_clustered(),
        };
        BristleBuilder::new(8)
            .stationary_nodes(60)
            .mobile_nodes(40)
            .topology(TransitStubConfig::small())
            .config(cfg)
            .build()
            .expect("builds")
    };
    let mut hops = Vec::new();
    for policy in [NamingPolicy::Scrambled, NamingPolicy::Clustered] {
        let mut sys = build(policy);
        for m in sys.mobile_keys().to_vec() {
            sys.move_node(m, None).expect("move");
        }
        let src = sys.stationary_keys()[0];
        let mut total = 0usize;
        for &dst in sys.stationary_keys().to_vec().iter().skip(1).take(20) {
            let rep = sys.route_mobile(src, dst).expect("route");
            assert_eq!(rep.terminus, dst);
            total += rep.total_hops();
        }
        hops.push(total);
    }
    assert!(hops[0] >= hops[1], "scrambled {} must not beat clustered {}", hops[0], hops[1]);
}

#[test]
fn all_three_architectures_run_the_same_workload() {
    // Smoke-level cross-architecture comparison on one seed.
    let mut bristle = system(9, 40, 20);
    let mut type_a = TypeASystem::build(9, 40, 20, &TransitStubConfig::small(), 1);
    let mut type_b = TypeBSystem::build(9, 40, 20, &TransitStubConfig::small());

    // Move everything once everywhere.
    for m in bristle.mobile_keys().to_vec() {
        bristle.move_node(m, None).expect("bristle move");
    }
    for b in type_a.mobile_bodies() {
        type_a.move_body(b).expect("type a move");
    }
    for m in type_b.mobile_keys() {
        type_b.move_node(m).expect("type b move");
    }

    // Bristle and Type B keep identities; Type A does not.
    assert_eq!(bristle.mobile.len(), 60);
    assert_eq!(type_b.dht.len(), 60);
    assert_eq!(type_a.dht.len(), 60, "same node count, but fresh identities");
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let mut sys = system(10, 30, 15);
        for m in sys.mobile_keys().to_vec() {
            sys.move_node(m, None).expect("move");
        }
        let src = sys.stationary_keys()[0];
        let dst = sys.stationary_keys()[7];
        let rep = sys.route_mobile(src, dst).expect("route");
        (rep.total_hops(), rep.path_cost, sys.meter.total_messages())
    };
    assert_eq!(run(), run());
}
