//! Operational checks of the paper's §3 clustered-naming theorem.
//!
//! Claim (eq. 1): under clustered naming, a route between two stationary
//! nodes x₁ → x₂ needs **no** mobile-node address resolution when
//!
//! * x₁ < x₂ (the route never wraps through the mobile band), for any ∇;
//! * or, in the worst case, whenever ∇ = (U−L)/ρ ≥ ½.
//!
//! We verify the first part exactly (zero discoveries on non-wrapping
//! routes) and the second statistically (sub-½ bands leak, ≥-½ bands
//! keep the leak marginal and strictly smaller).

use bristle::core::config::BristleConfig;
use bristle::core::naming::NamingScheme;
use bristle::core::system::{BristleBuilder, BristleSystem};
use bristle::netsim::transit_stub::TransitStubConfig;
use bristle::overlay::key::Key;

fn system(n_stat: usize, n_mob: usize, seed: u64) -> BristleSystem {
    BristleBuilder::new(seed)
        .stationary_nodes(n_stat)
        .mobile_nodes(n_mob)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::paper_clustered())
        .build()
        .expect("builds")
}

/// All ordered stationary pairs (x1, x2) whose route cannot wrap: the
/// clockwise arc from x1 to x2 stays inside the band [L, U].
fn non_wrapping_pairs(sys: &BristleSystem) -> Vec<(Key, Key)> {
    let NamingScheme::Clustered { .. } = sys.naming() else { panic!("clustered config expected") };
    let mut keys = sys.stationary_keys().to_vec();
    keys.sort_unstable();
    let mut out = Vec::new();
    for (i, &a) in keys.iter().enumerate() {
        for &b in keys.iter().skip(i + 1).step_by(3) {
            out.push((a, b)); // a < b, both in the contiguous band
        }
    }
    out
}

#[test]
fn non_wrapping_stationary_routes_never_resolve_mobile_addresses() {
    // M/N = 50% exactly: ∇ = ½, the theorem's boundary.
    let mut sys = system(40, 40, 1);
    for m in sys.mobile_keys().to_vec() {
        sys.move_node(m, None).expect("move");
    }
    let pairs = non_wrapping_pairs(&sys);
    assert!(pairs.len() > 100, "need a real sample, got {}", pairs.len());
    for (src, dst) in pairs {
        let rep = sys.route_mobile(src, dst).expect("route");
        assert_eq!(rep.terminus, dst);
        assert_eq!(rep.discoveries, 0, "x1 < x2 route {src}→{dst} touched the mobile band");
        assert_eq!(rep.stale_attempts, 0);
    }
}

#[test]
fn monotone_routing_keeps_intermediate_keys_inside_the_arc() {
    // The theorem's mechanism: every hop lies in (x1, x2], so for
    // non-wrapping pairs every hop is in the stationary band.
    let mut sys = system(50, 30, 2);
    let pairs = non_wrapping_pairs(&sys);
    for (src, dst) in pairs.into_iter().take(200) {
        let rep = sys.route_mobile(src, dst).expect("route");
        let _ = rep;
        // Check at the overlay level directly.
        let mut cur = src;
        while let Some(next) = sys.mobile.next_hop(cur, dst).expect("hop") {
            assert!(src.in_cw_range(next, dst), "hop {next} escaped the arc ({src}, {dst}]");
            assert!(!sys.is_mobile(next), "stationary arc contains no mobile nodes");
            cur = next;
        }
    }
}

#[test]
fn nabla_below_half_leaks_more_than_nabla_at_or_above_half() {
    // Statistical worst-case check across all pairs (wrapping included):
    // the per-route discovery rate at ∇ < ½ strictly exceeds the rate at
    // ∇ ≥ ½ on the same stationary population.
    let rate = |n_mob: usize, seed: u64| -> f64 {
        let mut sys = system(40, n_mob, seed);
        for m in sys.mobile_keys().to_vec() {
            sys.move_node(m, None).expect("move");
        }
        let stationaries = sys.stationary_keys().to_vec();
        let mut discoveries = 0usize;
        let mut routes = 0usize;
        for (i, &src) in stationaries.iter().enumerate() {
            for &dst in stationaries.iter().skip(i + 1).step_by(2) {
                // Both directions: one of them wraps.
                for (a, b) in [(src, dst), (dst, src)] {
                    let rep = sys.route_mobile(a, b).expect("route");
                    discoveries += rep.discoveries;
                    routes += 1;
                }
            }
        }
        discoveries as f64 / routes as f64
    };
    let at_half = rate(40, 3); // ∇ = 0.5
    let below_half = rate(120, 3); // ∇ = 0.25
    assert!(
        below_half > at_half,
        "∇ = 0.25 must leak more discoveries ({below_half}) than ∇ = 0.5 ({at_half})"
    );
}
