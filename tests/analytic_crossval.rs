//! Cross-validation: the measured system must agree with the paper's
//! analytic models (`bristle_core::analysis`) within honest tolerances.
//! This ties the two halves of the reproduction together — if either the
//! simulator or the formulas drifted, these tests catch it.

use bristle::core::analysis;
use bristle::core::config::BristleConfig;
use bristle::core::system::BristleBuilder;
use bristle::netsim::transit_stub::TransitStubConfig;
use bristle::sim::workload::{measure_routes, sample_stationary_pairs};

#[test]
fn measured_route_hops_match_expected_route_hops() {
    // expected_route_hops(n, 4) should predict plain-overlay routes to
    // within ~35% at several scales.
    for (n, seed) in [(150usize, 1u64), (400, 2)] {
        let mut sys = BristleBuilder::new(seed)
            .stationary_nodes(n)
            .mobile_nodes(0)
            .topology(TransitStubConfig::small())
            .build()
            .expect("builds");
        let pairs = sample_stationary_pairs(&mut sys, 300);
        let agg = measure_routes(&mut sys, &pairs);
        let predicted = analysis::expected_route_hops(n as f64, 4.0);
        let measured = agg.mean_hops();
        assert!(
            (measured - predicted).abs() / predicted < 0.35,
            "n = {n}: measured {measured} vs predicted {predicted}"
        );
    }
}

#[test]
fn measured_registrations_match_model_scale() {
    // registrations_per_mobile predicts (M/N)·log₂N; our tables hold a
    // small constant factor more rows than the idealized log₂N, so check
    // the *ratio structure*: registrations per mobile divided by total
    // state rows per node must equal M/N (every row on a mobile subject
    // is a registration).
    let sys = BristleBuilder::new(3)
        .stationary_nodes(120)
        .mobile_nodes(80)
        .topology(TransitStubConfig::small())
        .build()
        .expect("builds");
    let stats = sys.stats();
    let m_over_n = 80.0 / 200.0;
    let rows_per_node = stats.mobile_state_rows as f64 / stats.nodes as f64;
    let measured_ratio = stats.avg_registrants_per_mobile
        * (stats.mobile as f64 / stats.nodes as f64)
        / rows_per_node;
    // registrations = rows pointing at mobile subjects ≈ (M/N) × rows.
    assert!(
        (measured_ratio - m_over_n).abs() < 0.12,
        "registration share {measured_ratio} vs M/N {m_over_n}"
    );
    let _ = sys;
}

#[test]
fn measured_ldt_depth_matches_loglog_bound() {
    // With ample capacity the LDT depth should be ≈ log_k(members) + 1 —
    // the O(log log N) dissemination bound.
    let sys = BristleBuilder::new(4)
        .stationary_nodes(150)
        .mobile_nodes(60)
        .topology(TransitStubConfig::small())
        .config(BristleConfig { capacity_range: (15, 15), ..BristleConfig::recommended() })
        .build()
        .expect("builds");
    for &m in sys.mobile_keys().to_vec().iter().take(20) {
        let tree = sys.build_ldt(m).expect("ldt");
        if tree.len() < 3 {
            continue;
        }
        let bound = analysis::ldt_depth(tree.len() as f64, 15.0) + 2.0;
        assert!(
            (tree.depth() as f64) <= bound.ceil(),
            "tree of {} members has depth {} > bound {bound}",
            tree.len(),
            tree.depth()
        );
    }
}

#[test]
fn measured_rdp_between_model_curves() {
    // The measured scrambled/clustered hop ratio at M/N = 0.5 should fall
    // in the band the analytic route-hop models define (they bracket the
    // real system: the scrambled model assumes every mobile hop pays a
    // full discovery; the clustered model assumes none before the knee).
    use bristle::sim::experiments::fig7;
    let cfg = fig7::Fig7Config {
        n_stationary: 100,
        fractions: vec![0.5],
        routes: 300,
        topology: TransitStubConfig::tiny(),
        seed: 5,
        parallel: false,
    };
    let row = fig7::run(&cfg).rows[0];
    let n = 200.0; // total at M/N = 0.5 with 100 stationary
    let p = analysis::Population::new(n, 100.0);
    let model_ratio =
        analysis::scrambled_route_hops(p, 4.0) / analysis::clustered_route_hops(p, 4.0);
    let measured_ratio = row.rdp_hops();
    assert!(
        measured_ratio > 1.0 && measured_ratio < model_ratio * 1.5,
        "measured RDP {measured_ratio} vs model {model_ratio}"
    );
}
