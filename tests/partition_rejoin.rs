//! Acceptance tests for partition tolerance
//! ([`bristle::sim::partition`]).
//!
//! The headline scenario: the router population is cut in two and the
//! near side — kept ignorant of far-side heartbeats — wrongfully buries
//! the nodes behind the cut. After the heal, every wrongfully dead node
//! must refute the verdict with a bumped incarnation number, a rejoin
//! must reverse each funeral (registrations, location records and LDT
//! membership restored), split-brain record divergence must reconcile
//! to the `(incarnation, seq, published_at)` maximum, and delivery over
//! the same endpoint pairs must return to within 1% of the pre-cut
//! level within a bounded number of heartbeat rounds.

use bristle::core::config::BristleConfig;
use bristle::core::system::BristleBuilder;
use bristle::netsim::transit_stub::TransitStubConfig;
use bristle::proto::transport::{FaultConfig, LinkFilter};
use bristle::sim::messaging::MessagingBristleSystem;
use bristle::sim::partition::{run_partition, PartitionConfig};

/// The two fixed seeds CI runs; both produce multiple wrongful deaths
/// and full post-heal recovery.
const CI_SEEDS: [u64; 2] = [8, 27];

fn assert_partition_tolerant(seed: u64) {
    let cfg = PartitionConfig::standard(seed);
    let out = run_partition(&cfg);

    // The cut isolates real nodes and the near side buries them alive.
    assert!(out.far_side > 0, "seed {seed}: the cut isolated nobody");
    assert!(out.wrongful_deaths >= 2, "seed {seed} buried too few live nodes: {out:?}");

    // Every wrongful verdict is refuted and every funeral reversed,
    // within the bounded recovery window.
    assert_eq!(
        out.rejoined, out.wrongful_deaths,
        "seed {seed}: a wrongfully buried node never rejoined: {out:?}"
    );
    assert!(out.refutations > 0, "seed {seed}: no Alive refutation was ever broadcast");
    assert!(out.rejoin_messages > 0, "seed {seed}: no rejoin traffic was metered");
    assert!(
        out.recovery_rounds_used <= cfg.recovery_rounds,
        "seed {seed}: recovery exceeded its bound"
    );

    // Split-brain divergence planted on the replicas reconciles to the
    // (incarnation, seq, published_at) maximum — the post-rejoin record.
    assert!(out.divergent_planted > 0, "seed {seed}: reconciliation was never exercised");
    assert!(out.reconciled, "seed {seed}: a replica kept the stale-incarnation record: {out:?}");

    // Delivery over the same pairs returns to within 1% of pre-cut.
    assert!(out.pre_attempted > 0);
    assert!(
        out.delivery_recovered(0.01),
        "seed {seed}: post-heal delivery {:.3} fell below pre-cut {:.3} - 1%",
        out.post_rate(),
        out.pre_rate()
    );
}

#[test]
fn partition_scenario_refutes_and_rejoins_seed_a() {
    assert_partition_tolerant(CI_SEEDS[0]);
}

#[test]
fn partition_scenario_refutes_and_rejoins_seed_b() {
    assert_partition_tolerant(CI_SEEDS[1]);
}

/// Determinism: the whole scenario — the cut, the lossy transport, the
/// funerals, the refutations and rejoins, the reconciliation — replays
/// identically from the same seed, meter tallies included.
#[test]
fn same_seed_partition_runs_agree_on_every_meter_tally() {
    for seed in CI_SEEDS {
        let cfg = PartitionConfig::standard(seed);
        assert_eq!(run_partition(&cfg), run_partition(&cfg), "seed {seed} diverged");
    }
}

/// Fine-grained state check on a hand-driven cut: after refutation and
/// rejoin, each resurrected node is back in the membership books at a
/// strictly fresher incarnation, its location record carries that
/// incarnation, it is registered again, and every LDT naming it as a
/// registrant contains it as a member.
#[test]
fn rejoined_nodes_recover_records_registrations_and_ldt_membership() {
    let sys = BristleBuilder::new(33)
        .stationary_nodes(36)
        .mobile_nodes(14)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds");
    let mut msys = MessagingBristleSystem::new(sys, FaultConfig::perfect(), 33);

    // Cut the routers in two: sorted order, first half vs second half.
    let mut routers = msys.sys.stub_routers().to_vec();
    routers.sort_unstable();
    let (near, far) = routers.split_at(routers.len() / 2);
    let far: Vec<_> = far.to_vec();
    let far_keys: Vec<_> = {
        let mut ks: Vec<_> = msys.sys.mobile.keys().collect();
        ks.sort_unstable();
        ks.into_iter().filter(|&k| far.contains(&msys.sys.router_of(k).unwrap())).collect()
    };
    assert!(!far_keys.is_empty(), "the cut must strand someone");
    msys.partition_now(LinkFilter::default().partition_groups(&[near.to_vec(), far.clone()]));

    // Suspicion hardens; bury every far-side node the near side condemns.
    let mut buried = Vec::new();
    for _ in 0..5 {
        for k in msys.heartbeat_round() {
            if far_keys.contains(&k) && msys.confirm_and_heal(k).is_ok() {
                buried.push(k);
            }
        }
    }
    assert!(!buried.is_empty(), "nobody was wrongfully buried");
    assert_eq!(msys.wrongly_buried(), {
        let mut b = buried.clone();
        b.sort_unstable();
        b
    });

    // Heal; the rejoin sweep reverses every funeral.
    msys.heal_now();
    for _ in 0..6 {
        msys.heartbeat_round();
        if msys.wrongly_buried().is_empty() {
            break;
        }
    }
    assert!(msys.wrongly_buried().is_empty(), "a funeral was never reversed");
    assert_eq!(msys.rejoin_log().len(), buried.len());

    // Rejoined stationary replicas refill their stores from the live
    // copies; one reconciliation pass settles every record.
    msys.sys.anti_entropy_locations().unwrap();

    for rec in msys.rejoin_log().to_vec() {
        let k = rec.key;
        // Alive again, at a strictly fresher incarnation.
        assert!(!msys.sys.is_confirmed_dead(k));
        let info = *msys.sys.node_info(k).expect("rejoined node is known");
        assert!(info.incarnation > 0, "the verdict must be out-ranked");
        assert_eq!(info.incarnation, rec.incarnation);

        if msys.sys.is_mobile(k) {
            // Its withdrawn location record is back at that incarnation.
            let owner = msys.sys.stationary.owner(k).unwrap();
            let stored = *msys.sys.stationary.node(owner).unwrap().store.get(&k).unwrap();
            assert_eq!(stored.incarnation, info.incarnation);
            // Holders of its state re-registered to it, so its own LDT
            // can push future moves; the tree must contain them.
            let regs = msys.sys.registry.registrants_of(k);
            if !regs.is_empty() {
                let tree = msys.sys.build_ldt(k).unwrap();
                for r in regs {
                    assert!(tree.contains(r.key), "registrant missing from rejoined LDT");
                }
            }
        }
        // Every LDT naming the resurrected node as a registrant has it
        // back as a member.
        let targets: Vec<_> = msys
            .sys
            .registry
            .iter()
            .filter(|(t, regs)| *t != k && regs.iter().any(|r| r.key == k))
            .map(|(t, _)| t)
            .collect();
        for t in targets {
            assert!(
                msys.sys.build_ldt(t).unwrap().contains(k),
                "rejoined node missing from an LDT it is registered to"
            );
        }
    }
}
